//! Directed capacitated graphs used as the network model.
//!
//! The paper models the network as `G = (V, E, c)` where `c : E -> R+` assigns
//! capacities to edges (§3 of the paper).  All topologies in the evaluation are
//! symmetric (every physical link carries traffic in both directions), so the
//! generators in [`crate::generators`] insert one directed edge per direction.

use std::fmt;

/// Index of a node in a [`Graph`].
///
/// Nodes are dense integers in `0..graph.num_nodes()`; we use a newtype so that
/// node indices, edge indices and path indices cannot be confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of a directed edge in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl NodeId {
    /// Raw index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl EdgeId {
    /// Raw index of the edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed capacitated edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source node of the edge.
    pub src: NodeId,
    /// Destination node of the edge.
    pub dst: NodeId,
    /// Capacity of the edge (same unit as traffic demands, e.g. Gbps).
    pub capacity: f64,
}

/// Errors returned when constructing or mutating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node index that does not exist.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge had a non-positive or non-finite capacity.
    InvalidCapacity,
    /// A self loop (src == dst) was inserted; the TE model never uses them.
    SelfLoop {
        /// The node on which the self loop was attempted.
        node: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node index {node} out of range (graph has {num_nodes} nodes)")
            }
            GraphError::InvalidCapacity => write!(f, "edge capacity must be positive and finite"),
            GraphError::SelfLoop { node } => write!(f, "self loop on node {node} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed, capacitated multigraph.
///
/// The graph is append-only: nodes are created up front and edges are added
/// with [`Graph::add_edge`] / [`Graph::add_bidirectional`].  Adjacency lists are
/// maintained incrementally so that shortest-path computations are cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// Outgoing edges per node.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edges per node.
    in_edges: Vec<Vec<EdgeId>>,
    /// Optional human-readable name (e.g. "GEANT").
    name: String,
}

impl Graph {
    /// Creates a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        Graph {
            num_nodes,
            edges: Vec::new(),
            out_edges: vec![Vec::new(); num_nodes],
            in_edges: vec![Vec::new(); num_nodes],
            name: String::new(),
        }
    }

    /// Creates a named graph with `num_nodes` nodes and no edges.
    pub fn named(name: impl Into<String>, num_nodes: usize) -> Self {
        let mut g = Graph::new(num_nodes);
        g.name = name.into();
        g
    }

    /// Human-readable name of the topology ("" if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Overrides the topology name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Iterator over `(EdgeId, &Edge)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// The edge with the given id.
    ///
    /// # Panics
    /// Panics if the edge id is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Capacity of the edge with the given id.
    #[inline]
    pub fn capacity(&self, id: EdgeId) -> f64 {
        self.edges[id.0].capacity
    }

    /// Vector of all edge capacities, indexed by `EdgeId`.
    pub fn capacities(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.capacity).collect()
    }

    /// Smallest edge capacity in the graph, or `None` if the graph has no edges.
    pub fn min_capacity(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|e| e.capacity)
            .min_by(|a, b| a.partial_cmp(b).expect("capacities are finite"))
    }

    /// Outgoing edges of a node.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node.0]
    }

    /// Incoming edges of a node.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node.0]
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node.0].len()
    }

    /// Adds a directed edge and returns its id.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
    ) -> Result<EdgeId, GraphError> {
        if src.0 >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange { node: src.0, num_nodes: self.num_nodes });
        }
        if dst.0 >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange { node: dst.0, num_nodes: self.num_nodes });
        }
        if src == dst {
            return Err(GraphError::SelfLoop { node: src.0 });
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(GraphError::InvalidCapacity);
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { src, dst, capacity });
        self.out_edges[src.0].push(id);
        self.in_edges[dst.0].push(id);
        Ok(id)
    }

    /// Adds two directed edges, one in each direction, both with `capacity`.
    ///
    /// Returns the ids of the `(src -> dst, dst -> src)` edges.
    pub fn add_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
    ) -> Result<(EdgeId, EdgeId), GraphError> {
        let fwd = self.add_edge(a, b, capacity)?;
        let bwd = self.add_edge(b, a, capacity)?;
        Ok((fwd, bwd))
    }

    /// Finds the id of a directed edge between two nodes, if one exists.
    ///
    /// If several parallel edges exist, the first inserted one is returned.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges[src.0].iter().copied().find(|&e| self.edges[e.0].dst == dst)
    }

    /// Returns `true` if there is at least one directed edge `src -> dst`.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }

    /// Multiplies every capacity by `factor` (used to normalize capacities so
    /// the smallest link is `1.0`, as in Figure 8 of the paper).
    pub fn scale_capacities(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        for e in &mut self.edges {
            e.capacity *= factor;
        }
    }

    /// Returns a copy of the graph with capacities normalized so that the
    /// minimum capacity equals 1.0.
    pub fn normalized_capacities(&self) -> Graph {
        let mut g = self.clone();
        if let Some(min) = g.min_capacity() {
            g.scale_capacities(1.0 / min);
        }
        g
    }

    /// All ordered source-destination pairs `(s, d)` with `s != d`.
    pub fn sd_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::with_capacity(self.num_nodes * self.num_nodes.saturating_sub(1));
        for s in 0..self.num_nodes {
            for d in 0..self.num_nodes {
                if s != d {
                    pairs.push((NodeId(s), NodeId(d)));
                }
            }
        }
        pairs
    }

    /// Checks that every ordered pair of distinct nodes is connected by a
    /// directed path.  Useful as a sanity check for generated topologies.
    pub fn is_strongly_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        // Strong connectivity <=> every node reachable from node 0 in G and in
        // the reverse graph.
        self.reachable_from(NodeId(0), false) == self.num_nodes
            && self.reachable_from(NodeId(0), true) == self.num_nodes
    }

    fn reachable_from(&self, start: NodeId, reverse: bool) -> usize {
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![start];
        seen[start.0] = true;
        let mut count = 0;
        while let Some(n) = stack.pop() {
            count += 1;
            let edges = if reverse { &self.in_edges[n.0] } else { &self.out_edges[n.0] };
            for &eid in edges {
                let e = &self.edges[eid.0];
                let next = if reverse { e.src } else { e.dst };
                if !seen[next.0] {
                    seen[next.0] = true;
                    stack.push(next);
                }
            }
        }
        count
    }

    /// Sum of all edge capacities (useful for normalizing gravity-model traffic).
    pub fn total_capacity(&self) -> f64 {
        self.edges.iter().map(|e| e.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::named("triangle", 3);
        g.add_bidirectional(NodeId(0), NodeId(1), 2.0).unwrap();
        g.add_bidirectional(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_bidirectional(NodeId(0), NodeId(2), 2.0).unwrap();
        g
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_strongly_connected());
        assert_eq!(g.name(), "triangle");
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(5), 1.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(g.add_edge(NodeId(0), NodeId(0), 1.0), Err(GraphError::SelfLoop { .. })));
        assert_eq!(g.add_edge(NodeId(0), NodeId(1), 0.0), Err(GraphError::InvalidCapacity));
        assert_eq!(g.add_edge(NodeId(0), NodeId(1), f64::NAN), Err(GraphError::InvalidCapacity));
        assert_eq!(g.add_edge(NodeId(0), NodeId(1), -3.0), Err(GraphError::InvalidCapacity));
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = triangle();
        for (id, e) in g.edges() {
            assert!(g.out_edges(e.src).contains(&id));
            assert!(g.in_edges(e.dst).contains(&id));
        }
        assert_eq!(g.out_degree(NodeId(0)), 2);
    }

    #[test]
    fn find_edge_works() {
        let g = triangle();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.edge(e).src, NodeId(0));
        assert_eq!(g.edge(e).dst, NodeId(1));
        // A pair with no edge must return None.
        let g2 = Graph::new(3);
        assert!(g2.find_edge(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn capacity_normalization() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 10.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 40.0).unwrap();
        let n = g.normalized_capacities();
        assert_eq!(n.min_capacity(), Some(1.0));
        assert!((n.capacity(EdgeId(1)) - 4.0).abs() < 1e-12);
        // Original graph untouched.
        assert_eq!(g.min_capacity(), Some(10.0));
    }

    #[test]
    fn sd_pairs_count() {
        let g = triangle();
        assert_eq!(g.sd_pairs().len(), 6);
        assert!(g.sd_pairs().iter().all(|(s, d)| s != d));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Graph::new(4);
        g.add_bidirectional(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_bidirectional(NodeId(2), NodeId(3), 1.0).unwrap();
        assert!(!g.is_strongly_connected());
    }
}
