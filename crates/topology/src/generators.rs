//! Topology generators for every network of Table 1 of the paper.
//!
//! | Name      | Type          | Nodes | Directed edges |
//! |-----------|---------------|-------|----------------|
//! | GEANT     | WAN           | 23    | 74             |
//! | UsCarrier | WAN           | 158   | 378            |
//! | Cogentco  | WAN           | 197   | 486            |
//! | pFabric   | ToR-level DC  | 9     | 72             |
//! | Meta DB   | PoD-level DC  | 4     | 12             |
//! | Meta DB   | ToR-level DC  | 155   | 7194           |
//! | Meta WEB  | PoD-level DC  | 8     | 56             |
//! | Meta WEB  | ToR-level DC  | 324   | 31520          |
//!
//! The public traces only describe traffic; the graph structures themselves are
//! reconstructed as follows (substitution documented in DESIGN.md §5):
//!
//! * WANs are generated as a ring (guaranteeing strong connectivity, like the
//!   national backbones they model) plus deterministic pseudo-random chords
//!   until the target edge count is reached, with heterogeneous capacities
//!   drawn from a standard WAN ladder (10/40/100 Gbps).
//! * PoD-level and pFabric topologies are full meshes (the paper converts both
//!   to direct-connect fabrics), uniform capacity.
//! * ToR-level topologies are random regular graphs (the paper cites Jellyfish
//!   [Jellyfish, NSDI 2012] for this choice), uniform capacity.
//!
//! The ToR-level fabrics of Table 1 are large (155/324 nodes); generating them
//! at full size is supported, but the evaluation harness defaults to scaled
//! versions so the experiment binaries finish quickly.  Use
//! [`TopologySpec::full_scale`] to restore the Table 1 sizes.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::graph::{Graph, NodeId};

/// The eight networks used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Pan-European research WAN (23 nodes).
    Geant,
    /// Topology-Zoo UsCarrier WAN (158 nodes).
    UsCarrier,
    /// Topology-Zoo Cogentco WAN (197 nodes).
    Cogentco,
    /// pFabric direct-connect fabric with 9 ToR switches.
    PFabric,
    /// Meta DB cluster, PoD level (4 PoDs, full mesh).
    MetaDbPod,
    /// Meta DB cluster, ToR level (155 ToRs, random regular).
    MetaDbTor,
    /// Meta WEB cluster, PoD level (8 PoDs, full mesh).
    MetaWebPod,
    /// Meta WEB cluster, ToR level (324 ToRs, random regular).
    MetaWebTor,
}

impl Topology {
    /// All eight topologies in the order of Table 1.
    pub fn all() -> [Topology; 8] {
        [
            Topology::Geant,
            Topology::UsCarrier,
            Topology::Cogentco,
            Topology::PFabric,
            Topology::MetaDbPod,
            Topology::MetaDbTor,
            Topology::MetaWebPod,
            Topology::MetaWebTor,
        ]
    }

    /// Canonical display name used in tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Geant => "GEANT",
            Topology::UsCarrier => "UsCarrier",
            Topology::Cogentco => "Cogentco",
            Topology::PFabric => "pFabric",
            Topology::MetaDbPod => "PoD DB",
            Topology::MetaDbTor => "ToR DB",
            Topology::MetaWebPod => "PoD WEB",
            Topology::MetaWebTor => "ToR WEB",
        }
    }

    /// `true` for wide-area networks.
    pub fn is_wan(&self) -> bool {
        matches!(self, Topology::Geant | Topology::UsCarrier | Topology::Cogentco)
    }

    /// `true` for ToR-level data-center fabrics (the most bursty traffic class).
    pub fn is_tor_level(&self) -> bool {
        matches!(self, Topology::PFabric | Topology::MetaDbTor | Topology::MetaWebTor)
    }

    /// `true` for PoD-level data-center fabrics.
    pub fn is_pod_level(&self) -> bool {
        matches!(self, Topology::MetaDbPod | Topology::MetaWebPod)
    }
}

/// How large to build a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The exact sizes from Table 1 of the paper.
    Full,
    /// A smaller, structurally equivalent instance suitable for fast tests and
    /// benchmarks (ToR fabrics shrink to a few dozen nodes, large WANs to ~40).
    Reduced,
}

/// A concrete request for a topology instance.
#[derive(Debug, Clone, Copy)]
pub struct TopologySpec {
    /// Which network to build.
    pub topology: Topology,
    /// Full-scale (Table 1) or reduced.
    pub scale: Scale,
    /// Seed for the deterministic pseudo-random construction.
    pub seed: u64,
}

impl TopologySpec {
    /// Full-scale instance with the default seed.
    pub fn full_scale(topology: Topology) -> Self {
        TopologySpec { topology, scale: Scale::Full, seed: 7 }
    }

    /// Reduced-scale instance with the default seed.
    pub fn reduced(topology: Topology) -> Self {
        TopologySpec { topology, scale: Scale::Reduced, seed: 7 }
    }

    /// Builds the graph described by this spec.
    pub fn build(&self) -> Graph {
        build_topology(self)
    }
}

/// Capacity ladder used for WAN links (Gbps).  Heterogeneous capacities matter
/// because path sensitivity normalizes split ratios by path capacity.
const WAN_CAPACITIES: [f64; 3] = [10.0, 40.0, 100.0];

/// Uniform capacity used for data-center links (Gbps).
const DC_CAPACITY: f64 = 100.0;

/// Builds the graph described by `spec`.
pub fn build_topology(spec: &TopologySpec) -> Graph {
    let (nodes, undirected_edges) = target_size(spec.topology, spec.scale);
    match spec.topology {
        Topology::Geant | Topology::UsCarrier | Topology::Cogentco => {
            wan_like(spec.topology.name(), nodes, undirected_edges, spec.seed)
        }
        Topology::PFabric | Topology::MetaDbPod | Topology::MetaWebPod => {
            full_mesh(spec.topology.name(), nodes, DC_CAPACITY)
        }
        Topology::MetaDbTor | Topology::MetaWebTor => {
            let degree = (2 * undirected_edges) / nodes;
            random_regular(spec.topology.name(), nodes, degree.max(3), DC_CAPACITY, spec.seed)
        }
    }
}

/// Target `(nodes, undirected edge count)` for a topology at a given scale.
///
/// Full scale matches Table 1 (directed edge counts there are twice the
/// undirected counts returned here, except for full meshes where they match
/// exactly because we count ordered pairs).
pub fn target_size(topology: Topology, scale: Scale) -> (usize, usize) {
    match (topology, scale) {
        (Topology::Geant, _) => (23, 37),
        (Topology::UsCarrier, Scale::Full) => (158, 189),
        (Topology::UsCarrier, Scale::Reduced) => (40, 48),
        (Topology::Cogentco, Scale::Full) => (197, 243),
        (Topology::Cogentco, Scale::Reduced) => (48, 59),
        (Topology::PFabric, _) => (9, 36),
        (Topology::MetaDbPod, _) => (4, 6),
        (Topology::MetaWebPod, _) => (8, 28),
        (Topology::MetaDbTor, Scale::Full) => (155, 3597),
        (Topology::MetaDbTor, Scale::Reduced) => (24, 96),
        (Topology::MetaWebTor, Scale::Full) => (324, 15760),
        (Topology::MetaWebTor, Scale::Reduced) => (30, 135),
    }
}

/// WAN-like topology: a ring plus deterministic pseudo-random chords with
/// heterogeneous capacities.
pub fn wan_like(name: &str, nodes: usize, undirected_edges: usize, seed: u64) -> Graph {
    assert!(nodes >= 3, "a WAN needs at least 3 nodes");
    assert!(undirected_edges >= nodes, "need at least a ring worth of edges");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57a4_11ce);
    let mut g = Graph::named(name, nodes);
    let mut present = vec![vec![false; nodes]; nodes];
    let mut added = 0usize;
    // Ring backbone.
    for i in 0..nodes {
        let j = (i + 1) % nodes;
        let cap = WAN_CAPACITIES[rng.gen_range(0..WAN_CAPACITIES.len())];
        g.add_bidirectional(NodeId(i), NodeId(j), cap).expect("ring edge is valid");
        present[i][j] = true;
        present[j][i] = true;
        added += 1;
    }
    // Chords until the target undirected edge count is reached.
    let mut attempts = 0usize;
    while added < undirected_edges && attempts < undirected_edges * 200 {
        attempts += 1;
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a == b || present[a][b] {
            continue;
        }
        // Prefer short chords (geographically plausible): accept long chords
        // with lower probability.
        let ring_dist = {
            let d = (a as isize - b as isize).unsigned_abs();
            d.min(nodes - d)
        };
        let accept_prob = 1.0 / (1.0 + ring_dist as f64 / 4.0);
        if rng.gen::<f64>() > accept_prob {
            continue;
        }
        let cap = WAN_CAPACITIES[rng.gen_range(0..WAN_CAPACITIES.len())];
        g.add_bidirectional(NodeId(a), NodeId(b), cap).expect("chord edge is valid");
        present[a][b] = true;
        present[b][a] = true;
        added += 1;
    }
    debug_assert!(g.is_strongly_connected());
    g
}

/// Full mesh (direct-connect) topology with uniform capacities.
pub fn full_mesh(name: &str, nodes: usize, capacity: f64) -> Graph {
    let mut g = Graph::named(name, nodes);
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            g.add_bidirectional(NodeId(i), NodeId(j), capacity).expect("mesh edge is valid");
        }
    }
    g
}

/// Random regular graph (Jellyfish-style ToR fabric) with uniform capacities.
///
/// Starts from a circulant graph of the requested degree and randomizes it with
/// degree-preserving double-edge swaps (the standard MCMC construction), which
/// is robust for the dense degrees used by ToR-level fabrics.  The result is
/// always simple, `degree`-regular (for `degree * nodes` even) and, after a
/// bounded number of retries, strongly connected.
pub fn random_regular(name: &str, nodes: usize, degree: usize, capacity: f64, seed: u64) -> Graph {
    assert!(degree >= 2, "degree must be at least 2");
    assert!(degree < nodes, "degree must be smaller than the node count");
    let degree = if nodes % 2 == 1 && degree % 2 == 1 {
        // An odd-degree regular graph needs an even node count; round the degree up.
        degree + 1
    } else {
        degree
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x2e90_1a77);
    for attempt in 0..20 {
        let adj = circulant_with_swaps(nodes, degree, &mut rng, attempt);
        let mut g = Graph::named(name, nodes);
        for i in 0..nodes {
            for &j in &adj[i] {
                if i < j {
                    g.add_bidirectional(NodeId(i), NodeId(j), capacity)
                        .expect("regular edge is valid");
                }
            }
        }
        if g.is_strongly_connected() {
            return g;
        }
    }
    // Unreachable in practice (a circulant graph is connected and swaps rarely
    // disconnect it); fall back to the un-swapped circulant graph.
    let adj = circulant_adjacency(nodes, degree);
    let mut g = Graph::named(name, nodes);
    for i in 0..nodes {
        for &j in &adj[i] {
            if i < j {
                g.add_bidirectional(NodeId(i), NodeId(j), capacity).expect("regular edge is valid");
            }
        }
    }
    g
}

/// Adjacency sets of a circulant graph: node `i` connects to `i ± 1 .. i ± d/2`
/// and, for odd degree (even node count), to the diametrically opposite node.
fn circulant_adjacency(nodes: usize, degree: usize) -> Vec<std::collections::BTreeSet<usize>> {
    let mut adj = vec![std::collections::BTreeSet::new(); nodes];
    let half = degree / 2;
    for i in 0..nodes {
        for k in 1..=half {
            let j = (i + k) % nodes;
            adj[i].insert(j);
            adj[j].insert(i);
        }
    }
    if degree % 2 == 1 {
        debug_assert!(nodes.is_multiple_of(2));
        for i in 0..nodes / 2 {
            let j = i + nodes / 2;
            adj[i].insert(j);
            adj[j].insert(i);
        }
    }
    adj
}

fn circulant_with_swaps(
    nodes: usize,
    degree: usize,
    rng: &mut ChaCha8Rng,
    extra_rounds: usize,
) -> Vec<std::collections::BTreeSet<usize>> {
    let mut adj = circulant_adjacency(nodes, degree);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, neigh) in adj.iter().enumerate() {
        for &j in neigh {
            if i < j {
                edges.push((i, j));
            }
        }
    }
    let swaps = edges.len() * (10 + extra_rounds);
    for _ in 0..swaps {
        let x = rng.gen_range(0..edges.len());
        let y = rng.gen_range(0..edges.len());
        if x == y {
            continue;
        }
        let (a, b) = edges[x];
        let (c, d) = edges[y];
        // All four endpoints must be distinct and the rewired edges must not exist yet.
        if a == c || a == d || b == c || b == d {
            continue;
        }
        if adj[a].contains(&c) || adj[b].contains(&d) {
            continue;
        }
        // Rewire (a,b),(c,d) -> (a,c),(b,d).
        adj[a].remove(&b);
        adj[b].remove(&a);
        adj[c].remove(&d);
        adj[d].remove(&c);
        adj[a].insert(c);
        adj[c].insert(a);
        adj[b].insert(d);
        adj[d].insert(b);
        edges[x] = (a.min(c), a.max(c));
        edges[y] = (b.min(d), b.max(d));
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geant_matches_table1() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        assert_eq!(g.num_nodes(), 23);
        assert_eq!(g.num_edges(), 74);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn uscarrier_and_cogentco_match_table1() {
        let us = TopologySpec::full_scale(Topology::UsCarrier).build();
        assert_eq!(us.num_nodes(), 158);
        assert_eq!(us.num_edges(), 378);
        assert!(us.is_strongly_connected());
        let co = TopologySpec::full_scale(Topology::Cogentco).build();
        assert_eq!(co.num_nodes(), 197);
        assert_eq!(co.num_edges(), 486);
        assert!(co.is_strongly_connected());
    }

    #[test]
    fn meshes_match_table1() {
        let pf = TopologySpec::full_scale(Topology::PFabric).build();
        assert_eq!(pf.num_nodes(), 9);
        assert_eq!(pf.num_edges(), 72);
        let db = TopologySpec::full_scale(Topology::MetaDbPod).build();
        assert_eq!(db.num_nodes(), 4);
        assert_eq!(db.num_edges(), 12);
        let web = TopologySpec::full_scale(Topology::MetaWebPod).build();
        assert_eq!(web.num_nodes(), 8);
        assert_eq!(web.num_edges(), 56);
    }

    #[test]
    fn reduced_tor_is_regular_and_connected() {
        let g = TopologySpec::reduced(Topology::MetaDbTor).build();
        assert_eq!(g.num_nodes(), 24);
        assert!(g.is_strongly_connected());
        // Degree = 2 * undirected_edges / nodes = 8 out-edges per node.
        for n in g.nodes() {
            assert_eq!(g.out_degree(n), 8, "node {n} has wrong degree");
        }
    }

    #[test]
    fn full_scale_tor_db_size_is_close_to_table1() {
        let g = TopologySpec::full_scale(Topology::MetaDbTor).build();
        assert_eq!(g.num_nodes(), 155);
        // 7194 directed edges in Table 1; the regular-graph construction rounds
        // the degree so we accept a small deviation.
        let target = 7194.0;
        let got = g.num_edges() as f64;
        assert!((got - target).abs() / target < 0.05, "edge count {got} too far from {target}");
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = TopologySpec::reduced(Topology::UsCarrier).build();
        let b = TopologySpec::reduced(Topology::UsCarrier).build();
        assert_eq!(a, b);
        let c =
            TopologySpec { topology: Topology::UsCarrier, scale: Scale::Reduced, seed: 8 }.build();
        assert_ne!(a, c, "different seeds should give different WAN chord sets");
    }

    #[test]
    fn wan_capacities_are_heterogeneous() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let caps: std::collections::BTreeSet<u64> =
            g.edges().map(|(_, e)| e.capacity.round() as u64).collect();
        assert!(caps.len() >= 2, "WAN should mix at least two capacity classes");
    }

    #[test]
    fn topology_metadata() {
        assert!(Topology::Geant.is_wan());
        assert!(!Topology::Geant.is_tor_level());
        assert!(Topology::MetaDbTor.is_tor_level());
        assert!(Topology::MetaWebPod.is_pod_level());
        assert_eq!(Topology::all().len(), 8);
        assert_eq!(Topology::MetaDbTor.name(), "ToR DB");
    }
}
