//! Candidate path sets and their incidence structures.
//!
//! A [`PathSet`] holds, for every ordered source-destination pair of a graph,
//! the candidate paths over which that pair's traffic may be split.  It also
//! pre-computes the two incidence relations of Function 1 (Appendix D.1 of the
//! paper): which paths serve which SD pair (`SDtoPath`) and which edges each
//! path traverses (`PathtoEdge`), so that MLU evaluation reduces to sparse
//! matrix products.

use figret_topology::{
    k_shortest_paths, racke_paths, EdgeWeight, Graph, NodeId, Path, RackeConfig,
};
use figret_traffic::ActivePairs;
use rayon::prelude::*;

/// Index of an ordered source-destination pair within a [`PathSet`].
pub type PairIndex = usize;

/// Index of a path within a [`PathSet`] (global, across all pairs).
pub type PathIndex = usize;

/// The candidate paths of every SD pair plus cached incidence structures.
#[derive(Debug, Clone)]
pub struct PathSet {
    num_nodes: usize,
    num_edges: usize,
    /// Ordered SD pairs, matching [`Graph::sd_pairs`] / `DemandMatrix::flatten_pairs`.
    pairs: Vec<(NodeId, NodeId)>,
    /// `pair_offsets[i]..pair_offsets[i+1]` indexes the paths of pair `i`.
    pair_offsets: Vec<usize>,
    /// All paths, grouped by pair.
    paths: Vec<Path>,
    /// Pair index of each path.
    pair_of_path: Vec<PairIndex>,
    /// Edge indices traversed by each path.
    path_edges: Vec<Vec<usize>>,
    /// Path capacities (`C_p = min edge capacity`).
    path_capacities: Vec<f64>,
    /// Edge capacities indexed by edge id.
    edge_capacities: Vec<f64>,
    /// For each edge, the list of paths that traverse it (reverse incidence).
    paths_on_edge: Vec<Vec<PathIndex>>,
}

impl PathSet {
    /// Builds a path set from explicit per-pair path lists.
    ///
    /// `per_pair[i]` must contain the candidate paths of the `i`-th pair of
    /// [`Graph::sd_pairs`]; pairs with no path are allowed (their demand simply
    /// cannot be routed and is ignored by the MLU computation).
    pub fn from_paths(graph: &Graph, per_pair: Vec<Vec<Path>>) -> PathSet {
        let pairs = graph.sd_pairs();
        assert_eq!(per_pair.len(), pairs.len(), "one path list per SD pair is required");
        PathSet::assemble(graph, pairs, per_pair)
    }

    /// [`PathSet::from_paths`] over an arbitrary pair universe: `per_pair[i]`
    /// holds the candidate paths of the `i`-th *active* pair (slot order of
    /// `active`).  This is how large fabrics avoid the `O(N²)` pair universe:
    /// the path set, the TE configuration, MLU evaluation, churn and the LP
    /// all key off `num_pairs()`, so a restricted universe flows through the
    /// whole stack unchanged.  Over [`ActivePairs::all`] the result is
    /// identical to [`PathSet::from_paths`].
    pub fn from_paths_for_pairs(
        graph: &Graph,
        active: &ActivePairs,
        per_pair: Vec<Vec<Path>>,
    ) -> PathSet {
        assert_eq!(active.num_nodes(), graph.num_nodes(), "pair index must match the graph");
        assert_eq!(per_pair.len(), active.len(), "one path list per active pair is required");
        let pairs = active.iter().map(|(_, s, d)| (NodeId(s), NodeId(d))).collect::<Vec<_>>();
        PathSet::assemble(graph, pairs, per_pair)
    }

    fn assemble(graph: &Graph, pairs: Vec<(NodeId, NodeId)>, per_pair: Vec<Vec<Path>>) -> PathSet {
        let mut pair_offsets = Vec::with_capacity(pairs.len() + 1);
        let mut paths = Vec::new();
        let mut pair_of_path = Vec::new();
        pair_offsets.push(0);
        for (i, ((s, d), pair_paths)) in pairs.iter().zip(per_pair).enumerate() {
            for p in pair_paths {
                assert_eq!(p.source(), *s, "path source must match the pair");
                assert_eq!(p.destination(), *d, "path destination must match the pair");
                paths.push(p);
                pair_of_path.push(i);
            }
            pair_offsets.push(paths.len());
        }
        let path_edges: Vec<Vec<usize>> =
            paths.iter().map(|p| p.edges().iter().map(|e| e.index()).collect()).collect();
        let path_capacities: Vec<f64> = paths.iter().map(|p| p.capacity(graph)).collect();
        let edge_capacities = graph.capacities();
        let mut paths_on_edge = vec![Vec::new(); graph.num_edges()];
        for (pi, edges) in path_edges.iter().enumerate() {
            for &e in edges {
                paths_on_edge[e].push(pi);
            }
        }
        PathSet {
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
            pairs,
            pair_offsets,
            paths,
            pair_of_path,
            path_edges,
            path_capacities,
            edge_capacities,
            paths_on_edge,
        }
    }

    /// The paper's default path selection: the `k` shortest (hop-count) paths
    /// per SD pair, computed with Yen's algorithm (§5.1, k = 3).
    pub fn k_shortest(graph: &Graph, k: usize) -> PathSet {
        let per_pair = graph
            .sd_pairs()
            .into_iter()
            .map(|(s, d)| k_shortest_paths(graph, s, d, k, EdgeWeight::HopCount))
            .collect();
        PathSet::from_paths(graph, per_pair)
    }

    /// [`PathSet::k_shortest`] restricted to the active pairs of a sparse
    /// demand universe.  Yen's algorithm runs only for the `nnz` active pairs
    /// (in parallel — per-pair results are independent and deterministic), so
    /// path selection on a 1024-ToR fabric with ~1% density does ~1% of the
    /// dense work.  Over [`ActivePairs::all`] this equals
    /// [`PathSet::k_shortest`] exactly.
    pub fn k_shortest_for_pairs(graph: &Graph, active: &ActivePairs, k: usize) -> PathSet {
        assert_eq!(active.num_nodes(), graph.num_nodes(), "pair index must match the graph");
        let per_pair: Vec<Vec<Path>> = active
            .node_pairs()
            .into_par_iter()
            .map(|(s, d)| k_shortest_paths(graph, NodeId(s), NodeId(d), k, EdgeWeight::HopCount))
            .collect();
        PathSet::from_paths_for_pairs(graph, active, per_pair)
    }

    /// SMORE-style path selection: Räcke-inspired diverse, capacity-aware paths.
    pub fn racke(graph: &Graph, config: &RackeConfig) -> PathSet {
        let per_pair =
            graph.sd_pairs().into_iter().map(|(s, d)| racke_paths(graph, s, d, config)).collect();
        PathSet::from_paths(graph, per_pair)
    }

    /// Extracts the sub-path-set covering only the active pairs, together
    /// with the map from restricted global path index to this set's global
    /// path index.  Candidate paths, their order and their capacities are
    /// preserved, so a configuration solved on the restricted set can be
    /// scattered back onto this one.  Every active pair must be present in
    /// this set's pair universe.
    pub fn restrict_to(&self, active: &ActivePairs) -> (PathSet, Vec<PathIndex>) {
        assert_eq!(active.num_nodes(), self.num_nodes, "pair index must match the path set");
        let mut index_of = std::collections::HashMap::with_capacity(self.pairs.len());
        for (i, &(s, d)) in self.pairs.iter().enumerate() {
            index_of.insert((s.index(), d.index()), i);
        }
        let mut pairs = Vec::with_capacity(active.len());
        let mut pair_offsets = Vec::with_capacity(active.len() + 1);
        let mut paths = Vec::new();
        let mut pair_of_path = Vec::new();
        let mut path_edges = Vec::new();
        let mut path_capacities = Vec::new();
        let mut path_map = Vec::new();
        pair_offsets.push(0);
        for (slot, s, d) in active.iter() {
            let src_pair = *index_of.get(&(s, d)).expect("active pair must exist in the path set");
            pairs.push((NodeId(s), NodeId(d)));
            for pi in self.paths_of_pair(src_pair) {
                paths.push(self.paths[pi].clone());
                pair_of_path.push(slot);
                path_edges.push(self.path_edges[pi].clone());
                path_capacities.push(self.path_capacities[pi]);
                path_map.push(pi);
            }
            pair_offsets.push(paths.len());
        }
        let mut paths_on_edge = vec![Vec::new(); self.num_edges];
        for (pi, edges) in path_edges.iter().enumerate() {
            for &e in edges {
                paths_on_edge[e].push(pi);
            }
        }
        let restricted = PathSet {
            num_nodes: self.num_nodes,
            num_edges: self.num_edges,
            pairs,
            pair_offsets,
            paths,
            pair_of_path,
            path_edges,
            path_capacities,
            edge_capacities: self.edge_capacities.clone(),
            paths_on_edge,
        };
        (restricted, path_map)
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges of the underlying graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of ordered SD pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total number of candidate paths across all pairs.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// The ordered SD pairs.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Global path indices belonging to pair `i`.
    pub fn paths_of_pair(&self, pair: PairIndex) -> std::ops::Range<PathIndex> {
        self.pair_offsets[pair]..self.pair_offsets[pair + 1]
    }

    /// Number of candidate paths of pair `i`.
    pub fn num_paths_of_pair(&self, pair: PairIndex) -> usize {
        self.pair_offsets[pair + 1] - self.pair_offsets[pair]
    }

    /// The pair served by a path.
    pub fn pair_of_path(&self, path: PathIndex) -> PairIndex {
        self.pair_of_path[path]
    }

    /// The path object at a global path index.
    pub fn path(&self, path: PathIndex) -> &Path {
        &self.paths[path]
    }

    /// Edge indices traversed by a path.
    pub fn path_edges(&self, path: PathIndex) -> &[usize] {
        &self.path_edges[path]
    }

    /// Capacity of a path (`C_p`).
    pub fn path_capacity(&self, path: PathIndex) -> f64 {
        self.path_capacities[path]
    }

    /// All path capacities, indexed by global path index.
    pub fn path_capacities(&self) -> &[f64] {
        &self.path_capacities
    }

    /// Edge capacities, indexed by edge id.
    pub fn edge_capacities(&self) -> &[f64] {
        &self.edge_capacities
    }

    /// Paths traversing a given edge.
    pub fn paths_on_edge(&self, edge: usize) -> &[PathIndex] {
        &self.paths_on_edge[edge]
    }

    /// Builds the dense `|pairs| x |paths|` SD-to-path incidence matrix of
    /// Function 1 (row-major).  Mostly useful for tests and for the neural
    /// network's differentiable MLU evaluation on small topologies.
    pub fn sd_to_path_dense(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.num_pairs() * self.num_paths()];
        for (pi, &pair) in self.pair_of_path.iter().enumerate() {
            m[pair * self.num_paths() + pi] = 1.0;
        }
        m
    }

    /// Builds the dense `|paths| x |edges|` path-to-edge incidence matrix of
    /// Function 1 (row-major).
    pub fn path_to_edge_dense(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.num_paths() * self.num_edges()];
        for (pi, edges) in self.path_edges.iter().enumerate() {
            for &e in edges {
                m[pi * self.num_edges() + e] = 1.0;
            }
        }
        m
    }

    /// Average number of candidate paths per pair (pairs with zero paths count).
    pub fn mean_paths_per_pair(&self) -> f64 {
        if self.num_pairs() == 0 {
            0.0
        } else {
            self.num_paths() as f64 / self.num_pairs() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Topology, TopologySpec};

    fn geant_paths() -> PathSet {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        PathSet::k_shortest(&g, 3)
    }

    #[test]
    fn k_shortest_builds_paths_for_every_pair() {
        let ps = geant_paths();
        assert_eq!(ps.num_pairs(), 23 * 22);
        assert_eq!(ps.num_nodes(), 23);
        assert_eq!(ps.num_edges(), 74);
        for pair in 0..ps.num_pairs() {
            let n = ps.num_paths_of_pair(pair);
            assert!((1..=3).contains(&n), "pair {pair} has {n} paths");
            for pi in ps.paths_of_pair(pair) {
                assert_eq!(ps.pair_of_path(pi), pair);
                assert!(ps.path_capacity(pi) > 0.0);
                assert!(!ps.path_edges(pi).is_empty());
            }
        }
        assert!(ps.mean_paths_per_pair() > 2.0);
    }

    #[test]
    fn incidence_matrices_are_consistent() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let sd2p = ps.sd_to_path_dense();
        let p2e = ps.path_to_edge_dense();
        // Every path has exactly one pair.
        for pi in 0..ps.num_paths() {
            let col_sum: f64 = (0..ps.num_pairs()).map(|pr| sd2p[pr * ps.num_paths() + pi]).sum();
            assert_eq!(col_sum, 1.0);
        }
        // path_to_edge rows match path_edges.
        for pi in 0..ps.num_paths() {
            let row_sum: f64 = (0..ps.num_edges()).map(|e| p2e[pi * ps.num_edges() + e]).sum();
            assert_eq!(row_sum as usize, ps.path_edges(pi).len());
        }
        // Reverse incidence agrees.
        for e in 0..ps.num_edges() {
            for &pi in ps.paths_on_edge(e) {
                assert!(ps.path_edges(pi).contains(&e));
            }
        }
    }

    #[test]
    fn racke_pathset_builds() {
        let g = TopologySpec::full_scale(Topology::PFabric).build();
        let ps = PathSet::racke(&g, &RackeConfig::default());
        assert_eq!(ps.num_pairs(), 72);
        assert!(ps.num_paths() >= ps.num_pairs());
    }

    #[test]
    #[should_panic(expected = "one path list per SD pair")]
    fn from_paths_checks_length() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        PathSet::from_paths(&g, vec![Vec::new()]);
    }

    #[test]
    fn all_pairs_universe_matches_dense_constructor() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let dense = PathSet::k_shortest(&g, 3);
        let all = ActivePairs::all(g.num_nodes());
        let sparse = PathSet::k_shortest_for_pairs(&g, &all, 3);
        assert_eq!(sparse.pairs(), dense.pairs());
        assert_eq!(sparse.num_paths(), dense.num_paths());
        for pi in 0..dense.num_paths() {
            assert_eq!(sparse.path(pi).nodes(), dense.path(pi).nodes());
            assert_eq!(sparse.pair_of_path(pi), dense.pair_of_path(pi));
            assert_eq!(sparse.path_capacity(pi), dense.path_capacity(pi));
        }
    }

    #[test]
    fn restricted_universe_is_the_active_subsequence() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let active = ActivePairs::sample_per_source(g.num_nodes(), 4, 7);
        let ps = PathSet::k_shortest_for_pairs(&g, &active, 3);
        assert_eq!(ps.num_pairs(), active.len());
        let dense = PathSet::k_shortest(&g, 3);
        // Every restricted pair's candidate paths equal the dense pair's.
        for (slot, s, d) in active.iter() {
            let (ns, nd) = ps.pairs()[slot];
            assert_eq!((ns.index(), nd.index()), (s, d));
            let dense_pair =
                dense.pairs().iter().position(|&(a, b)| a.index() == s && b.index() == d).unwrap();
            let restricted: Vec<_> =
                ps.paths_of_pair(slot).map(|pi| ps.path(pi).nodes().to_vec()).collect();
            let reference: Vec<_> =
                dense.paths_of_pair(dense_pair).map(|pi| dense.path(pi).nodes().to_vec()).collect();
            assert_eq!(restricted, reference);
        }
    }

    #[test]
    #[should_panic(expected = "one path list per active pair")]
    fn from_paths_for_pairs_checks_length() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let active = ActivePairs::all(g.num_nodes());
        PathSet::from_paths_for_pairs(&g, &active, vec![Vec::new()]);
    }
}
