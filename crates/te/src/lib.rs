//! # figret-te
//!
//! Traffic-engineering model primitives shared by FIGRET and every baseline:
//!
//! * [`pathset::PathSet`] — candidate paths per SD pair with the SD→path and
//!   path→edge incidence structures of Function 1 (Appendix D.1);
//! * [`config::TeConfig`] — split ratios (`Σ_{p ∈ P_sd} r_p = 1`);
//! * [`mlu`] — maximum-link-utilization evaluation `M(R, D)` (§3);
//! * [`sensitivity`] — path sensitivity `S_p = r_p / C_p` and the fine-grained
//!   robustness penalty of Equation 8;
//! * [`failures`] — proportional rerouting around failed links (§4.5);
//! * [`objective`] — normalized-MLU metrics and congestion-event counting;
//! * [`churn`] — routing churn of a reconfiguration (L1 distance between
//!   consecutive split-ratio vectors), the update cost the online serving
//!   subsystem budgets against (DESIGN.md §6).
//!
//! # Example
//!
//! ```
//! use figret_topology::{Topology, TopologySpec};
//! use figret_traffic::DemandMatrix;
//! use figret_te::{PathSet, TeConfig, max_link_utilization};
//!
//! let pod = TopologySpec::full_scale(Topology::MetaDbPod).build();
//! let paths = PathSet::k_shortest(&pod, 3);
//! let config = TeConfig::uniform(&paths);
//! let mut demand = DemandMatrix::zeros(4);
//! demand.set(0, 1, 50.0);
//! let mlu = max_link_utilization(&paths, &config, &demand);
//! assert!(mlu > 0.0);
//! ```

#![warn(missing_docs)]

pub mod churn;
pub mod config;
pub mod diff;
pub mod failures;
pub mod mlu;
pub mod objective;
pub mod pathset;
pub mod sensitivity;

pub use churn::{mean_series_churn, split_ratio_churn};
pub use config::{TeConfig, RATIO_TOLERANCE};
pub use diff::{DiffTe, MluAggregation};
pub use failures::{available_paths, reroute_around_failures, reroute_with_mask};
pub use mlu::{
    bottleneck_edge, edge_loads, edge_utilizations, max_link_utilization,
    max_link_utilization_naive, max_link_utilization_pairs, max_link_utilization_pairs_scratch,
    max_link_utilization_sparse, max_utilization_of_loads, path_flows,
};
pub use objective::{
    congestion_event_count, congestion_event_rate, mean, normalize_by, relative_change,
    SchemeQuality, CONGESTION_THRESHOLD,
};
pub use pathset::{PairIndex, PathIndex, PathSet};
pub use sensitivity::{
    max_sensitivity, max_sensitivity_per_pair, path_sensitivities, robustness_penalty,
    satisfies_sensitivity_bounds,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use figret_topology::{FailureScenario, Graph, NodeId};
    use proptest::prelude::*;

    /// A small ring+chords graph and a random raw-ratio vector.
    fn arbitrary_case() -> impl Strategy<Value = (Graph, Vec<f64>, Vec<f64>)> {
        (4usize..8).prop_flat_map(|n| {
            let graph = {
                let mut g = Graph::new(n);
                for i in 0..n {
                    g.add_bidirectional(NodeId(i), NodeId((i + 1) % n), 10.0).unwrap();
                }
                for i in 0..n {
                    let j = (i + 2) % n;
                    if !g.has_edge(NodeId(i), NodeId(j)) {
                        g.add_bidirectional(NodeId(i), NodeId(j), 25.0).unwrap();
                    }
                }
                g
            };
            let num_paths = PathSet::k_shortest(&graph, 3).num_paths();
            let num_pairs = n * (n - 1);
            (
                Just(graph),
                proptest::collection::vec(0.0f64..1.0, num_paths),
                proptest::collection::vec(0.0f64..100.0, num_pairs),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn from_raw_always_yields_valid_configs((g, raw, _d) in arbitrary_case()) {
            let ps = PathSet::k_shortest(&g, 3);
            let cfg = TeConfig::from_raw(&ps, &raw);
            prop_assert!(cfg.is_valid(&ps));
        }

        #[test]
        fn mlu_fast_matches_naive_and_is_monotone((g, raw, demand) in arbitrary_case()) {
            let ps = PathSet::k_shortest(&g, 3);
            let cfg = TeConfig::from_raw(&ps, &raw);
            let dm = figret_traffic::DemandMatrix::from_pairs(g.num_nodes(), &demand).unwrap();
            let fast = max_link_utilization(&ps, &cfg, &dm);
            let naive = max_link_utilization_naive(&ps, &cfg, &dm);
            prop_assert!((fast - naive).abs() < 1e-9);
            // Scaling demands scales the MLU.
            let doubled = dm.scaled(2.0);
            let fast2 = max_link_utilization(&ps, &cfg, &doubled);
            prop_assert!((fast2 - 2.0 * fast).abs() < 1e-9);
        }

        #[test]
        fn rerouting_preserves_per_pair_mass((g, raw, _d) in arbitrary_case()) {
            let ps = PathSet::k_shortest(&g, 3);
            let cfg = TeConfig::from_raw(&ps, &raw);
            // Fail the first physical link (edges 0 and 1 are its two directions).
            let scenario = FailureScenario::from_edges(vec![
                figret_topology::EdgeId(0),
                figret_topology::EdgeId(1),
            ]);
            let rerouted = reroute_around_failures(&ps, &cfg, &scenario);
            for pair in 0..ps.num_pairs() {
                let alive_exists = ps
                    .paths_of_pair(pair)
                    .any(|pi| !ps.path_edges(pi).iter().any(|&e| e == 0 || e == 1));
                let sum: f64 = ps.paths_of_pair(pair).map(|pi| rerouted.ratio(pi)).sum();
                if alive_exists {
                    prop_assert!((sum - 1.0).abs() < 1e-6, "pair {} sums to {}", pair, sum);
                }
                // Failed paths must carry nothing.
                for pi in ps.paths_of_pair(pair) {
                    if ps.path_edges(pi).iter().any(|&e| e == 0 || e == 1) && alive_exists {
                        prop_assert!(rerouted.ratio(pi).abs() < 1e-12);
                    }
                }
            }
        }

        #[test]
        fn sensitivity_penalty_is_nonnegative_and_scales((g, raw, demand) in arbitrary_case()) {
            let ps = PathSet::k_shortest(&g, 3);
            let cfg = TeConfig::from_raw(&ps, &raw);
            let var: Vec<f64> = demand.iter().map(|d| d * d).collect();
            let p1 = robustness_penalty(&ps, &cfg, &var);
            prop_assert!(p1 >= 0.0);
            let var2: Vec<f64> = var.iter().map(|v| v * 3.0).collect();
            let p3 = robustness_penalty(&ps, &cfg, &var2);
            prop_assert!((p3 - 3.0 * p1).abs() < 1e-9 * (1.0 + p1.abs()));
        }
    }
}
