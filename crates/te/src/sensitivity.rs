//! Path sensitivity (§4.1 of the paper).
//!
//! The sensitivity of a path is `S_p = r_p / C_p`: the marginal increase in the
//! utilization of the path's bottleneck link per unit of unexpected extra
//! traffic on the SD pair it serves.  FIGRET's robustness term penalizes the
//! *maximum* sensitivity among the paths of each SD pair, weighted by that
//! pair's historical traffic variance.

use crate::config::TeConfig;
use crate::pathset::PathSet;

/// Per-path sensitivities `S_p = r_p / C_p`.
pub fn path_sensitivities(paths: &PathSet, config: &TeConfig) -> Vec<f64> {
    (0..paths.num_paths()).map(|pi| config.ratio(pi) / paths.path_capacity(pi)).collect()
}

/// Per-pair maximum sensitivity `S^max_sd = max_{p ∈ P_sd} S_p`.
/// Pairs without candidate paths report 0.
pub fn max_sensitivity_per_pair(paths: &PathSet, config: &TeConfig) -> Vec<f64> {
    let s = path_sensitivities(paths, config);
    (0..paths.num_pairs())
        .map(|pair| paths.paths_of_pair(pair).map(|pi| s[pi]).fold(0.0, f64::max))
        .collect()
}

/// The largest path sensitivity in the whole configuration (the objective
/// minimized by COUDER-style schemes).
pub fn max_sensitivity(paths: &PathSet, config: &TeConfig) -> f64 {
    path_sensitivities(paths, config).into_iter().fold(0.0, f64::max)
}

/// The fine-grained robustness penalty of the FIGRET loss (Equation 8):
/// `Σ_sd σ²_sd · S^max_sd`, where `variances` holds `σ²_sd` per pair.
pub fn robustness_penalty(paths: &PathSet, config: &TeConfig, variances: &[f64]) -> f64 {
    assert_eq!(variances.len(), paths.num_pairs(), "one variance per SD pair is required");
    max_sensitivity_per_pair(paths, config).into_iter().zip(variances).map(|(s, v)| s * v).sum()
}

/// `true` if every path satisfies `S_p <= bound(pair)`, the constraint form of
/// desensitization-based TE (Equation 4).
pub fn satisfies_sensitivity_bounds<F: Fn(usize) -> f64>(
    paths: &PathSet,
    config: &TeConfig,
    bound: F,
    tolerance: f64,
) -> bool {
    let s = path_sensitivities(paths, config);
    (0..paths.num_paths()).all(|pi| s[pi] <= bound(paths.pair_of_path(pi)) + tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Graph, NodeId};

    fn two_path_net() -> (Graph, PathSet) {
        // 0 -> 1 directly (capacity 1) or via 2 (capacity 4 bottleneck).
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 4.0).unwrap();
        g.add_edge(NodeId(2), NodeId(1), 8.0).unwrap();
        // Reverse direction so every pair has at least one path.
        g.add_edge(NodeId(1), NodeId(0), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(0), 4.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 8.0).unwrap();
        let ps = PathSet::k_shortest(&g, 2);
        (g, ps)
    }

    #[test]
    fn sensitivities_divide_by_path_capacity() {
        let (_g, ps) = two_path_net();
        let cfg = TeConfig::uniform(&ps);
        let s = path_sensitivities(&ps, &cfg);
        // Pair (0,1) has two paths: direct capacity 1 and detour capacity 4.
        let pair01 =
            ps.pairs().iter().position(|&(a, b)| a == NodeId(0) && b == NodeId(1)).unwrap();
        let idx: Vec<usize> = ps.paths_of_pair(pair01).collect();
        assert_eq!(idx.len(), 2);
        let (direct, detour) =
            if ps.path(idx[0]).len() == 1 { (idx[0], idx[1]) } else { (idx[1], idx[0]) };
        assert!((s[direct] - 0.5 / 1.0).abs() < 1e-12);
        assert!((s[detour] - 0.5 / 4.0).abs() < 1e-12);
        let per_pair = max_sensitivity_per_pair(&ps, &cfg);
        assert!((per_pair[pair01] - 0.5).abs() < 1e-12);
        assert!((max_sensitivity(&ps, &cfg) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shifting_traffic_to_fat_paths_reduces_sensitivity() {
        let (_g, ps) = two_path_net();
        let pair01 =
            ps.pairs().iter().position(|&(a, b)| a == NodeId(0) && b == NodeId(1)).unwrap();
        let idx: Vec<usize> = ps.paths_of_pair(pair01).collect();
        let (direct, detour) =
            if ps.path(idx[0]).len() == 1 { (idx[0], idx[1]) } else { (idx[1], idx[0]) };
        let mut raw = TeConfig::uniform(&ps).ratios().to_vec();
        raw[direct] = 0.2;
        raw[detour] = 0.8;
        let cfg = TeConfig::from_raw(&ps, &raw);
        let uniform = TeConfig::uniform(&ps);
        let per_pair_biased = max_sensitivity_per_pair(&ps, &cfg);
        let per_pair_uniform = max_sensitivity_per_pair(&ps, &uniform);
        assert!(per_pair_biased[pair01] < per_pair_uniform[pair01]);
    }

    #[test]
    fn robustness_penalty_weights_by_variance() {
        let (_g, ps) = two_path_net();
        let cfg = TeConfig::uniform(&ps);
        let zero_var = vec![0.0; ps.num_pairs()];
        assert_eq!(robustness_penalty(&ps, &cfg, &zero_var), 0.0);
        let mut one_pair = vec![0.0; ps.num_pairs()];
        one_pair[0] = 2.0;
        let expected = 2.0 * max_sensitivity_per_pair(&ps, &cfg)[0];
        assert!((robustness_penalty(&ps, &cfg, &one_pair) - expected).abs() < 1e-12);
    }

    #[test]
    fn bound_checking() {
        let (_g, ps) = two_path_net();
        let cfg = TeConfig::uniform(&ps);
        assert!(satisfies_sensitivity_bounds(&ps, &cfg, |_| 1.0, 1e-9));
        assert!(!satisfies_sensitivity_bounds(&ps, &cfg, |_| 0.1, 1e-9));
    }

    #[test]
    #[should_panic(expected = "one variance per SD pair")]
    fn penalty_checks_length() {
        let (_g, ps) = two_path_net();
        let cfg = TeConfig::uniform(&ps);
        robustness_penalty(&ps, &cfg, &[1.0]);
    }
}
