//! Maximum-link-utilization (MLU) evaluation.
//!
//! Given a demand matrix `D` and a TE configuration `R`, the flow on an edge is
//! `f_e = Σ_{s,d} Σ_{p ∈ P_sd, e ∈ p} D_sd · r_p` and the MLU is
//! `max_e f_e / c(e)` (§3, denoted `M(R, D)` in the paper).  This module
//! implements that computation with the sparse incidence structures of
//! [`crate::pathset::PathSet`], which is exactly Function 1 of Appendix D.1.

use figret_traffic::{DemandMatrix, SparseDemand};

use crate::config::TeConfig;
use crate::pathset::PathSet;

/// The flow carried by each path: `flow_p = D_{sd(p)} · r_p`.
pub fn path_flows(paths: &PathSet, config: &TeConfig, demand_pairs: &[f64]) -> Vec<f64> {
    assert_eq!(demand_pairs.len(), paths.num_pairs(), "one demand per SD pair is required");
    let mut flows = vec![0.0; paths.num_paths()];
    for (pi, flow) in flows.iter_mut().enumerate() {
        let pair = paths.pair_of_path(pi);
        *flow = demand_pairs[pair] * config.ratio(pi);
    }
    flows
}

/// The total traffic on every edge.
pub fn edge_loads(paths: &PathSet, config: &TeConfig, demand_pairs: &[f64]) -> Vec<f64> {
    let flows = path_flows(paths, config, demand_pairs);
    let mut loads = vec![0.0; paths.num_edges()];
    for (pi, f) in flows.iter().enumerate() {
        if *f == 0.0 {
            continue;
        }
        for &e in paths.path_edges(pi) {
            loads[e] += f;
        }
    }
    loads
}

/// Per-edge utilization `f_e / c(e)`.
pub fn edge_utilizations(paths: &PathSet, config: &TeConfig, demand_pairs: &[f64]) -> Vec<f64> {
    edge_loads(paths, config, demand_pairs)
        .into_iter()
        .zip(paths.edge_capacities())
        .map(|(l, c)| l / c)
        .collect()
}

/// Maximum link utilization `M(R, D)` for a flattened demand vector.
pub fn max_link_utilization_pairs(paths: &PathSet, config: &TeConfig, demand_pairs: &[f64]) -> f64 {
    edge_utilizations(paths, config, demand_pairs).into_iter().fold(0.0, f64::max)
}

/// Maximum link utilization `M(R, D)` for a demand matrix.
pub fn max_link_utilization(paths: &PathSet, config: &TeConfig, demand: &DemandMatrix) -> f64 {
    max_link_utilization_pairs(paths, config, &demand.flatten_pairs())
}

/// Maximum link utilization for a sparse demand column over a path set built
/// on the *same* pair universe ([`PathSet::k_shortest_for_pairs`] /
/// [`PathSet::from_paths_for_pairs`] over the column's `ActivePairs`): the
/// column's value vector *is* the per-pair demand vector, so no `O(N²)`
/// scatter happens.  Because zero-demand paths contribute nothing to edge
/// loads and active slots preserve the dense pair order, the result is
/// bit-identical to evaluating the densified demand on the all-pairs path
/// set.
pub fn max_link_utilization_sparse(
    paths: &PathSet,
    config: &TeConfig,
    demand: &SparseDemand,
) -> f64 {
    assert_eq!(
        demand.len(),
        paths.num_pairs(),
        "sparse demand universe must match the path set's pair universe"
    );
    max_link_utilization_pairs(paths, config, demand.values())
}

/// [`max_link_utilization_pairs`] with a caller-provided edge-load scratch
/// buffer (resized as needed).  Flows are accumulated in the same path order
/// and utilizations folded in the same edge order as the allocating pipeline,
/// so the result is bit-identical — only the per-call `Vec` allocations are
/// gone.  This is the serving hot path's MLU evaluator.
pub fn max_link_utilization_pairs_scratch(
    paths: &PathSet,
    config: &TeConfig,
    demand_pairs: &[f64],
    loads: &mut Vec<f64>,
) -> f64 {
    assert_eq!(demand_pairs.len(), paths.num_pairs(), "one demand per SD pair is required");
    loads.clear();
    loads.resize(paths.num_edges(), 0.0);
    for pi in 0..paths.num_paths() {
        let f = demand_pairs[paths.pair_of_path(pi)] * config.ratio(pi);
        if f == 0.0 {
            continue;
        }
        for &e in paths.path_edges(pi) {
            loads[e] += f;
        }
    }
    loads.iter().zip(paths.edge_capacities()).map(|(l, c)| l / c).fold(0.0, f64::max)
}

/// Maximum utilization of an explicit edge-load vector: `max_e loads[e] /
/// capacities[e]`, folded in edge order like every MLU evaluator here.
///
/// The sharded serving fleet uses this to recover the *global* realized MLU
/// from per-shard work: each shard's restricted path set keeps the full edge
/// universe (`PathSet::restrict_to` preserves `num_edges` and capacities), so
/// summing the shards' [`max_link_utilization_pairs_scratch`] load buffers in
/// stable shard order and folding once is exact — and bit-deterministic —
/// without ever evaluating the merged configuration on the merged demand.
pub fn max_utilization_of_loads(loads: &[f64], capacities: &[f64]) -> f64 {
    assert_eq!(loads.len(), capacities.len(), "one load per edge is required");
    loads.iter().zip(capacities).map(|(l, c)| l / c).fold(0.0, f64::max)
}

/// The edge achieving the maximum utilization, with its utilization.
/// Returns `None` when the path set has no edges.
pub fn bottleneck_edge(
    paths: &PathSet,
    config: &TeConfig,
    demand: &DemandMatrix,
) -> Option<(usize, f64)> {
    edge_utilizations(paths, config, &demand.flatten_pairs())
        .into_iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("utilizations are finite"))
}

/// Naive MLU recomputation that walks every path explicitly.  Slower than
/// [`max_link_utilization`] but independent of the incidence caches; used by
/// tests to cross-check the optimized implementation.
pub fn max_link_utilization_naive(
    paths: &PathSet,
    config: &TeConfig,
    demand: &DemandMatrix,
) -> f64 {
    let demand_pairs = demand.flatten_pairs();
    let mut loads = vec![0.0f64; paths.num_edges()];
    for pair in 0..paths.num_pairs() {
        for pi in paths.paths_of_pair(pair) {
            let flow = demand_pairs[pair] * config.ratio(pi);
            for e in paths.path(pi).edges() {
                loads[e.index()] += flow;
            }
        }
    }
    loads.into_iter().zip(paths.edge_capacities()).map(|(l, c)| l / c).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Graph, NodeId, Topology, TopologySpec};
    use figret_traffic::wan::{wan_trace, WanTrafficConfig};

    /// The 3-node example of Figure 3 of the paper: A=0, B=1, C=2, all links
    /// capacity 2, demands A->B, A->C, B->C.
    fn figure3() -> (Graph, PathSet) {
        let mut g = Graph::named("figure3", 3);
        g.add_bidirectional(NodeId(0), NodeId(1), 2.0).unwrap();
        g.add_bidirectional(NodeId(0), NodeId(2), 2.0).unwrap();
        g.add_bidirectional(NodeId(1), NodeId(2), 2.0).unwrap();
        let ps = PathSet::k_shortest(&g, 2);
        (g, ps)
    }

    fn figure3_demand(ab: f64, ac: f64, bc: f64) -> DemandMatrix {
        let mut d = DemandMatrix::zeros(3);
        d.set(0, 1, ab);
        d.set(0, 2, ac);
        d.set(1, 2, bc);
        d
    }

    /// TE scheme 1 of Figure 3: all traffic on direct (shortest) paths.
    #[test]
    fn figure3_scheme1_normal_and_burst() {
        let (_g, ps) = figure3();
        let cfg = TeConfig::shortest_path(&ps);
        let normal = figure3_demand(1.0, 1.0, 1.0);
        assert!((max_link_utilization(&ps, &cfg, &normal) - 0.5).abs() < 1e-9);
        let burst = figure3_demand(4.0, 1.0, 1.0);
        assert!((max_link_utilization(&ps, &cfg, &burst) - 2.0).abs() < 1e-9);
    }

    /// TE scheme 2 of Figure 3: every demand split 50/50 over its two paths.
    #[test]
    fn figure3_scheme2_normal_and_burst() {
        let (_g, ps) = figure3();
        let cfg = TeConfig::uniform(&ps);
        let normal = figure3_demand(1.0, 1.0, 1.0);
        assert!((max_link_utilization(&ps, &cfg, &normal) - 0.75).abs() < 1e-9);
        for burst in [
            figure3_demand(4.0, 1.0, 1.0),
            figure3_demand(1.0, 4.0, 1.0),
            figure3_demand(1.0, 1.0, 4.0),
        ] {
            assert!((max_link_utilization(&ps, &cfg, &burst) - 1.5).abs() < 1e-9);
        }
    }

    /// TE scheme 3 of Figure 3: direct paths for A->B and A->C, 62.5%/37.5%
    /// split for B->C.  MLU values quoted in §2.3 of the paper.
    #[test]
    fn figure3_scheme3_matches_paper() {
        let (_g, ps) = figure3();
        let mut raw = vec![0.0; ps.num_paths()];
        // Identify pairs: pairs are ordered (0,1), (0,2), (1,0), (1,2), (2,0), (2,1).
        for pair in 0..ps.num_pairs() {
            let (s, d) = ps.pairs()[pair];
            let range: Vec<usize> = ps.paths_of_pair(pair).collect();
            if s == NodeId(1) && d == NodeId(2) {
                // B->C: 62.5% on the direct path (1 hop), 37.5% on the detour.
                for &pi in &range {
                    raw[pi] = if ps.path(pi).len() == 1 { 0.625 } else { 0.375 };
                }
            } else {
                // Everything else: direct path only.
                for &pi in &range {
                    raw[pi] = if ps.path(pi).len() == 1 { 1.0 } else { 0.0 };
                }
            }
        }
        let cfg = TeConfig::from_raw(&ps, &raw);
        let normal = figure3_demand(1.0, 1.0, 1.0);
        assert!((max_link_utilization(&ps, &cfg, &normal) - 0.6875).abs() < 1e-9);
        // The paper quotes 2.1875 for burst 1/2 because it accounts links as
        // undirected (the A<->B link carries the A->B burst plus the B->A leg
        // of the B->C detour).  Our model uses one capacity per direction, so
        // the burst lands on the A->B direction alone and the MLU is 4/2 = 2.
        // The qualitative ordering of the three schemes is unchanged: scheme 3
        // is worse than scheme 2 under bursts 1/2 and better under normal
        // traffic and burst 3.
        let burst1 = figure3_demand(4.0, 1.0, 1.0);
        assert!((max_link_utilization(&ps, &cfg, &burst1) - 2.0).abs() < 1e-9);
        let burst3 = figure3_demand(1.0, 1.0, 4.0);
        assert!((max_link_utilization(&ps, &cfg, &burst3) - 1.25).abs() < 1e-9);
    }

    #[test]
    fn fast_and_naive_mlu_agree_on_geant() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let ps = PathSet::k_shortest(&g, 3);
        let trace = wan_trace(&g, &WanTrafficConfig { num_snapshots: 5, ..Default::default() });
        let cfg = TeConfig::uniform(&ps);
        for m in trace.matrices() {
            let fast = max_link_utilization(&ps, &cfg, m);
            let naive = max_link_utilization_naive(&ps, &cfg, m);
            assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
            assert!(fast > 0.0);
        }
    }

    #[test]
    fn scratch_mlu_is_bit_identical_to_the_allocating_pipeline() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let ps = PathSet::k_shortest(&g, 3);
        let trace = wan_trace(&g, &WanTrafficConfig { num_snapshots: 5, ..Default::default() });
        let cfg = TeConfig::uniform(&ps);
        let mut loads = Vec::new();
        for m in trace.matrices() {
            let pairs = m.flatten_pairs();
            let reference = max_link_utilization_pairs(&ps, &cfg, &pairs);
            let scratch = max_link_utilization_pairs_scratch(&ps, &cfg, &pairs, &mut loads);
            assert_eq!(reference.to_bits(), scratch.to_bits());
        }
    }

    #[test]
    fn sparse_mlu_is_bit_identical_to_dense_on_a_restricted_universe() {
        use figret_traffic::ActivePairs;
        use std::sync::Arc;

        let g = TopologySpec::full_scale(Topology::Geant).build();
        let n = g.num_nodes();
        let active = Arc::new(ActivePairs::sample_per_source(n, 4, 13));
        let restricted = PathSet::k_shortest_for_pairs(&g, &active, 3);
        let dense = PathSet::k_shortest(&g, 3);

        // A demand supported only on the active pairs.
        let mut demand = SparseDemand::zeros(Arc::clone(&active));
        for (slot, s, d) in active.iter() {
            demand.set_slot(slot, 1.0 + ((s * 31 + d * 7) % 17) as f64);
        }

        for (cfg_r, cfg_d) in [
            (TeConfig::uniform(&restricted), TeConfig::uniform(&dense)),
            (TeConfig::shortest_path(&restricted), TeConfig::shortest_path(&dense)),
        ] {
            let sparse_mlu = max_link_utilization_sparse(&restricted, &cfg_r, &demand);
            let dense_mlu = max_link_utilization(&dense, &cfg_d, &demand.to_matrix());
            assert_eq!(sparse_mlu.to_bits(), dense_mlu.to_bits());
            assert!(sparse_mlu > 0.0);
        }
    }

    #[test]
    fn bottleneck_edge_is_the_argmax() {
        let (_g, ps) = figure3();
        let cfg = TeConfig::shortest_path(&ps);
        let burst = figure3_demand(4.0, 1.0, 1.0);
        let (edge, util) = bottleneck_edge(&ps, &cfg, &burst).unwrap();
        assert!((util - 2.0).abs() < 1e-9);
        let utils = edge_utilizations(&ps, &cfg, &burst.flatten_pairs());
        assert_eq!(utils.iter().cloned().fold(0.0, f64::max), utils[edge]);
    }

    #[test]
    fn zero_demand_gives_zero_mlu() {
        let (_g, ps) = figure3();
        let cfg = TeConfig::uniform(&ps);
        let zero = DemandMatrix::zeros(3);
        assert_eq!(max_link_utilization(&ps, &cfg, &zero), 0.0);
        let flows = path_flows(&ps, &cfg, &zero.flatten_pairs());
        assert!(flows.iter().all(|f| *f == 0.0));
    }
}
