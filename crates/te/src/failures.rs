//! Failure handling (§4.5 of the paper).
//!
//! When links fail, the paths that traverse them become unavailable.  The
//! widely adopted approach the paper integrates into FIGRET reroutes traffic
//! around failed paths by proportionally redistributing each pair's failed
//! split ratios over its surviving paths:
//!
//! * if the surviving paths have non-zero ratios, the failed mass is spread
//!   proportionally to those ratios (e.g. `(0.5, 0.3, 0.2)` with the first path
//!   failed becomes `(0, 0.6, 0.4)`);
//! * if all surviving paths have zero ratio, the failed mass is spread equally
//!   (e.g. `(1, 0, 0)` becomes `(0, 0.5, 0.5)`).
//!
//! No retraining or re-optimization is needed.

use figret_topology::FailureScenario;

use crate::config::TeConfig;
use crate::pathset::PathSet;

/// `mask[p] == true` iff path `p` survives the failure scenario.
pub fn available_paths(paths: &PathSet, scenario: &FailureScenario) -> Vec<bool> {
    (0..paths.num_paths())
        .map(|pi| {
            !paths.path_edges(pi).iter().any(|&e| scenario.is_failed(figret_topology::EdgeId(e)))
        })
        .collect()
}

/// Applies the proportional-redistribution rule to a configuration.
///
/// Pairs whose candidate paths all fail keep zero ratios (their demand cannot
/// be served; callers may treat that as loss or as infinite utilization).
pub fn reroute_around_failures(
    paths: &PathSet,
    config: &TeConfig,
    scenario: &FailureScenario,
) -> TeConfig {
    let alive = available_paths(paths, scenario);
    reroute_with_mask(paths, config, &alive)
}

/// Same as [`reroute_around_failures`] but with an explicit availability mask
/// (used by fault-aware baselines that reason about hypothetical failures).
pub fn reroute_with_mask(paths: &PathSet, config: &TeConfig, alive: &[bool]) -> TeConfig {
    assert_eq!(alive.len(), paths.num_paths(), "one availability flag per path is required");
    let mut ratios = config.ratios().to_vec();
    for pair in 0..paths.num_pairs() {
        let range: Vec<usize> = paths.paths_of_pair(pair).collect();
        if range.is_empty() {
            continue;
        }
        let alive_paths: Vec<usize> = range.iter().copied().filter(|&pi| alive[pi]).collect();
        let failed_mass: f64 =
            range.iter().copied().filter(|&pi| !alive[pi]).map(|pi| ratios[pi]).sum();
        if alive_paths.is_empty() {
            // Nothing survives: zero everything, the demand cannot be served.
            for pi in range {
                ratios[pi] = 0.0;
            }
            continue;
        }
        if failed_mass == 0.0 {
            continue;
        }
        let alive_mass: f64 = alive_paths.iter().map(|&pi| ratios[pi]).sum();
        if alive_mass > 0.0 {
            // Proportional redistribution.
            let scale = (alive_mass + failed_mass) / alive_mass;
            for &pi in &alive_paths {
                ratios[pi] *= scale;
            }
        } else {
            // Equal redistribution.
            let share = failed_mass / alive_paths.len() as f64;
            for &pi in &alive_paths {
                ratios[pi] = share;
            }
        }
        for &pi in &range {
            if !alive[pi] {
                ratios[pi] = 0.0;
            }
        }
    }
    // The redistribution preserves per-pair sums by construction; from_raw
    // would also renormalize pairs that lost all paths, which we do not want,
    // so we construct directly.
    TeConfig::from_normalized(paths, ratios.clone()).unwrap_or_else(|| {
        // Pairs that lost every path have ratio sum 0; fall back to a raw
        // construction that leaves those pairs uniform (they cannot carry
        // traffic anyway, but the config stays well-formed).
        TeConfig::from_raw(paths, &ratios)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{EdgeId, Graph, NodeId};

    /// Three parallel 2-hop routes from 0 to 4 via 1, 2, 3.
    fn three_route_net() -> (Graph, PathSet) {
        let mut g = Graph::new(5);
        for via in 1..=3 {
            g.add_bidirectional(NodeId(0), NodeId(via), 10.0).unwrap();
            g.add_bidirectional(NodeId(via), NodeId(4), 10.0).unwrap();
        }
        let ps = PathSet::k_shortest(&g, 3);
        (g, ps)
    }

    fn pair_index(ps: &PathSet, s: usize, d: usize) -> usize {
        ps.pairs().iter().position(|&(a, b)| a == NodeId(s) && b == NodeId(d)).unwrap()
    }

    #[test]
    fn proportional_redistribution_matches_paper_example() {
        let (g, ps) = three_route_net();
        let pair = pair_index(&ps, 0, 4);
        let idx: Vec<usize> = ps.paths_of_pair(pair).collect();
        assert_eq!(idx.len(), 3);
        // Ratios (0.5, 0.3, 0.2); fail the first path's first edge.
        let mut raw = TeConfig::uniform(&ps).ratios().to_vec();
        raw[idx[0]] = 0.5;
        raw[idx[1]] = 0.3;
        raw[idx[2]] = 0.2;
        let cfg = TeConfig::from_raw(&ps, &raw);
        let failed_edge = ps.path_edges(idx[0])[0];
        let scenario = FailureScenario::from_edges(vec![EdgeId(failed_edge)]);
        let rerouted = reroute_around_failures(&ps, &cfg, &scenario);
        assert!((rerouted.ratio(idx[0]) - 0.0).abs() < 1e-12);
        assert!((rerouted.ratio(idx[1]) - 0.6).abs() < 1e-12);
        assert!((rerouted.ratio(idx[2]) - 0.4).abs() < 1e-12);
        let _ = g;
    }

    #[test]
    fn equal_redistribution_when_survivors_have_zero_ratio() {
        let (_g, ps) = three_route_net();
        let pair = pair_index(&ps, 0, 4);
        let idx: Vec<usize> = ps.paths_of_pair(pair).collect();
        let mut raw = TeConfig::uniform(&ps).ratios().to_vec();
        raw[idx[0]] = 1.0;
        raw[idx[1]] = 0.0;
        raw[idx[2]] = 0.0;
        let cfg = TeConfig::from_raw(&ps, &raw);
        let failed_edge = ps.path_edges(idx[0])[0];
        let scenario = FailureScenario::from_edges(vec![EdgeId(failed_edge)]);
        let rerouted = reroute_around_failures(&ps, &cfg, &scenario);
        assert!((rerouted.ratio(idx[1]) - 0.5).abs() < 1e-12);
        assert!((rerouted.ratio(idx[2]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unaffected_pairs_are_untouched() {
        let (_g, ps) = three_route_net();
        let cfg = TeConfig::uniform(&ps);
        let pair04 = pair_index(&ps, 0, 4);
        let idx: Vec<usize> = ps.paths_of_pair(pair04).collect();
        let failed_edge = ps.path_edges(idx[0])[0];
        let scenario = FailureScenario::from_edges(vec![EdgeId(failed_edge)]);
        let rerouted = reroute_around_failures(&ps, &cfg, &scenario);
        // A pair that does not use the failed edge keeps its ratios.
        for pair in 0..ps.num_pairs() {
            let uses_failed =
                ps.paths_of_pair(pair).any(|pi| ps.path_edges(pi).contains(&failed_edge));
            if !uses_failed {
                for pi in ps.paths_of_pair(pair) {
                    assert_eq!(rerouted.ratio(pi), cfg.ratio(pi));
                }
            }
        }
    }

    #[test]
    fn availability_mask_matches_failed_edges() {
        let (_g, ps) = three_route_net();
        let scenario = FailureScenario::from_edges(vec![EdgeId(0)]);
        let alive = available_paths(&ps, &scenario);
        for pi in 0..ps.num_paths() {
            let uses = ps.path_edges(pi).contains(&0usize);
            assert_eq!(alive[pi], !uses);
        }
        // No failures: everything alive.
        let all_alive = available_paths(&ps, &FailureScenario::none());
        assert!(all_alive.iter().all(|a| *a));
    }
}
