//! Evaluation metrics built on top of MLU values.
//!
//! The paper reports MLU normalized by the omniscient optimum, counts
//! "significant congestion events" (normalized MLU > 2), and summarizes
//! distributions with box plots.  These helpers operate on plain `Vec<f64>`
//! series so they can be reused by every experiment.

use figret_traffic::DistributionSummary;

/// Threshold above which a normalized MLU counts as a significant congestion
/// event (the paper uses 2.0 in §5.2).
pub const CONGESTION_THRESHOLD: f64 = 2.0;

/// Normalizes a series of MLUs by a baseline series (typically the omniscient
/// optimum), element-wise.  Entries whose baseline is zero are reported as 1.0
/// when the value is also zero and as `f64::INFINITY` otherwise.
pub fn normalize_by(values: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), baseline.len(), "series must have equal length");
    values
        .iter()
        .zip(baseline)
        .map(|(v, b)| {
            if *b > 0.0 {
                v / b
            } else if *v == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        })
        .collect()
}

/// Fraction of snapshots whose normalized MLU exceeds `threshold`.
pub fn congestion_event_rate(normalized: &[f64], threshold: f64) -> f64 {
    if normalized.is_empty() {
        return 0.0;
    }
    normalized.iter().filter(|v| **v > threshold).count() as f64 / normalized.len() as f64
}

/// Number of snapshots whose normalized MLU exceeds `threshold`.
pub fn congestion_event_count(normalized: &[f64], threshold: f64) -> usize {
    normalized.iter().filter(|v| **v > threshold).count()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Relative change `(candidate - reference) / reference`, used by Tables 3-5 to
/// report "performance decline" percentages.  Returns 0 when the reference is 0.
pub fn relative_change(candidate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (candidate - reference) / reference
    }
}

/// A compact per-scheme result: the normalized-MLU distribution plus the
/// congestion-event rate.  This is what every quality figure reports.
#[derive(Debug, Clone)]
pub struct SchemeQuality {
    /// Display name of the TE scheme.
    pub scheme: String,
    /// Summary of the normalized MLU distribution.
    pub normalized_mlu: DistributionSummary,
    /// Fraction of snapshots with normalized MLU above [`CONGESTION_THRESHOLD`].
    pub congestion_rate: f64,
}

impl SchemeQuality {
    /// Builds the quality record from a normalized MLU series.
    pub fn from_normalized(scheme: impl Into<String>, normalized: &[f64]) -> SchemeQuality {
        SchemeQuality {
            scheme: scheme.into(),
            normalized_mlu: DistributionSummary::from_samples(normalized),
            congestion_rate: congestion_event_rate(normalized, CONGESTION_THRESHOLD),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_edge_cases() {
        let v = vec![2.0, 3.0, 0.0, 1.0];
        let b = vec![1.0, 1.5, 0.0, 0.0];
        let n = normalize_by(&v, &b);
        assert_eq!(n[0], 2.0);
        assert_eq!(n[1], 2.0);
        assert_eq!(n[2], 1.0);
        assert!(n[3].is_infinite());
    }

    #[test]
    fn congestion_counting() {
        let n = vec![1.0, 2.5, 3.0, 1.9];
        assert_eq!(congestion_event_count(&n, 2.0), 2);
        assert!((congestion_event_rate(&n, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(congestion_event_rate(&[], 2.0), 0.0);
    }

    #[test]
    fn mean_and_relative_change() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((relative_change(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_change(1.0, 0.0), 0.0);
    }

    #[test]
    fn scheme_quality_summary() {
        let q = SchemeQuality::from_normalized("FIGRET", &[1.0, 1.1, 2.4, 1.2]);
        assert_eq!(q.scheme, "FIGRET");
        assert_eq!(q.normalized_mlu.count, 4);
        assert!((q.congestion_rate - 0.25).abs() < 1e-12);
    }
}
