//! Differentiable TE expressions on the autograd tape.
//!
//! Both FIGRET's training loss (Equations 7 and 8 of the paper) and the
//! iterative gradient-based TE solver need to express the same quantities as
//! differentiable functions of a raw per-path weight vector:
//!
//! * split ratios — sigmoid followed by per-SD-pair normalization,
//! * maximum link utilization `M(R, D)` via the incidence matrices of
//!   Function 1 (Appendix D.1), either exactly (`max`) or smoothed
//!   (`logsumexp`),
//! * the fine-grained sensitivity penalty `Σ_sd σ²_sd · S^max_sd`.
//!
//! [`DiffTe`] pre-computes the constant structures (segments, path→edge
//! incidence, capacity vectors) once per [`PathSet`] so that per-sample graph
//! construction stays cheap.

use std::sync::Arc;

use figret_nn::{Graph, SparseMatrix, Var};

use crate::pathset::PathSet;

/// How to aggregate per-edge utilizations into the loss term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MluAggregation {
    /// Exact maximum (sub-gradient flows to the bottleneck edge only).
    Max,
    /// Smooth maximum `T · ln Σ exp(u_e / T)` with the given temperature.
    SmoothMax(f64),
}

/// Pre-computed constant structures for differentiable TE expressions.
#[derive(Debug, Clone)]
pub struct DiffTe {
    /// Per-pair path index ranges (the normalization segments).
    segments: Arc<Vec<std::ops::Range<usize>>>,
    /// Edge × path incidence matrix (entries are 1).
    edge_by_path: Arc<SparseMatrix>,
    /// `1 / c(e)` per edge.
    inv_edge_capacity: Arc<Vec<f64>>,
    /// `1 / C_p` per path.
    inv_path_capacity: Arc<Vec<f64>>,
    num_pairs: usize,
    num_paths: usize,
}

impl DiffTe {
    /// Builds the constant structures for a path set.
    pub fn new(paths: &PathSet) -> DiffTe {
        let segments: Vec<std::ops::Range<usize>> =
            (0..paths.num_pairs()).map(|pair| paths.paths_of_pair(pair)).collect();
        let rows: Vec<Vec<(usize, f64)>> = (0..paths.num_edges())
            .map(|e| paths.paths_on_edge(e).iter().map(|&p| (p, 1.0)).collect())
            .collect();
        let edge_by_path = SparseMatrix::from_rows(paths.num_edges(), paths.num_paths(), &rows);
        let inv_edge_capacity: Vec<f64> = paths.edge_capacities().iter().map(|c| 1.0 / c).collect();
        let inv_path_capacity: Vec<f64> = paths.path_capacities().iter().map(|c| 1.0 / c).collect();
        DiffTe {
            segments: Arc::new(segments),
            edge_by_path: Arc::new(edge_by_path),
            inv_edge_capacity: Arc::new(inv_edge_capacity),
            inv_path_capacity: Arc::new(inv_path_capacity),
            num_pairs: paths.num_pairs(),
            num_paths: paths.num_paths(),
        }
    }

    /// Number of SD pairs.
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Number of candidate paths.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// The per-pair path index ranges (the normalization segments), in pair
    /// order.
    pub fn segments(&self) -> &[std::ops::Range<usize>] {
        &self.segments
    }

    /// Turns raw (unbounded) per-path weights into split ratios:
    /// `ratios = segment_normalize(sigmoid(raw))`.
    pub fn ratios_from_raw(&self, graph: &mut Graph, raw: Var) -> Var {
        let positive = graph.sigmoid(raw);
        graph.segment_normalize(positive, Arc::clone(&self.segments))
    }

    /// Per-SD-pair normalization of an already non-negative weight node.
    pub fn normalize(&self, graph: &mut Graph, nonnegative: Var) -> Var {
        graph.segment_normalize(nonnegative, Arc::clone(&self.segments))
    }

    /// Per-edge utilizations for the given split-ratio node and demand vector
    /// (one demand per SD pair, `flatten_pairs` order).
    pub fn edge_utilizations(&self, graph: &mut Graph, ratios: Var, demand_pairs: &[f64]) -> Var {
        assert_eq!(demand_pairs.len(), self.num_pairs, "one demand per SD pair is required");
        // flow_p = d_{pair(p)} * r_p  — expand the per-pair demands to per-path.
        let mut per_path_demand = vec![0.0; self.num_paths];
        for (pair, seg) in self.segments.iter().enumerate() {
            for p in seg.clone() {
                per_path_demand[p] = demand_pairs[pair];
            }
        }
        let flows = graph.mul_const(ratios, Arc::new(per_path_demand));
        let loads = graph.sparse_matvec(flows, Arc::clone(&self.edge_by_path));
        graph.mul_const(loads, Arc::clone(&self.inv_edge_capacity))
    }

    /// The MLU term `M(R, D)` as a scalar node.
    pub fn mlu(
        &self,
        graph: &mut Graph,
        ratios: Var,
        demand_pairs: &[f64],
        aggregation: MluAggregation,
    ) -> Var {
        let utils = self.edge_utilizations(graph, ratios, demand_pairs);
        match aggregation {
            MluAggregation::Max => graph.max(utils),
            MluAggregation::SmoothMax(t) => graph.logsumexp(utils, t),
        }
    }

    /// Per-edge utilizations for a batch: `ratios` is a `B×num_paths` node and
    /// `demand_rows` holds `B` demand vectors (`flatten_pairs` order, row
    /// major, `B × num_pairs` values).  The result is a `B×num_edges` node.
    pub fn edge_utilizations_batch(
        &self,
        graph: &mut Graph,
        ratios: Var,
        demand_rows: &[f64],
    ) -> Var {
        let batch = graph.value(ratios).rows();
        assert_eq!(
            demand_rows.len(),
            batch * self.num_pairs,
            "one demand per SD pair per batch row is required"
        );
        // flow_p = d_{pair(p)} * r_p per row — expand per-pair demands to a
        // full B×num_paths constant (each row has its own demands).
        let mut per_path_demand = vec![0.0; batch * self.num_paths];
        for b in 0..batch {
            let demand = &demand_rows[b * self.num_pairs..(b + 1) * self.num_pairs];
            let out = &mut per_path_demand[b * self.num_paths..(b + 1) * self.num_paths];
            for (pair, seg) in self.segments.iter().enumerate() {
                for p in seg.clone() {
                    out[p] = demand[pair];
                }
            }
        }
        let flows = graph.mul_const(ratios, Arc::new(per_path_demand));
        let loads = graph.sparse_matvec(flows, Arc::clone(&self.edge_by_path));
        graph.mul_const(loads, Arc::clone(&self.inv_edge_capacity))
    }

    /// Per-sample MLU of a batch as a `B×1` node (one `M(R_b, D_b)` per row).
    pub fn mlu_batch(
        &self,
        graph: &mut Graph,
        ratios: Var,
        demand_rows: &[f64],
        aggregation: MluAggregation,
    ) -> Var {
        let utils = self.edge_utilizations_batch(graph, ratios, demand_rows);
        match aggregation {
            MluAggregation::Max => graph.row_max(utils),
            MluAggregation::SmoothMax(t) => graph.row_logsumexp(utils, t),
        }
    }

    /// Per-pair maximum path sensitivity `S^max_sd` as a `1×num_pairs` node.
    pub fn max_sensitivity_per_pair(&self, graph: &mut Graph, ratios: Var) -> Var {
        let sens = graph.mul_const(ratios, Arc::clone(&self.inv_path_capacity));
        graph.segment_max(sens, Arc::clone(&self.segments))
    }

    /// The fine-grained robustness penalty `Σ_sd weight_sd · S^max_sd`
    /// (Equation 8 with `weight = σ²`).
    ///
    /// Batch-transparent: for a `B×num_paths` ratio node the result is a
    /// `B×1` column of per-sample penalties (a `1×1` scalar for one sample).
    pub fn sensitivity_penalty(&self, graph: &mut Graph, ratios: Var, weights: &[f64]) -> Var {
        assert_eq!(weights.len(), self.num_pairs, "one weight per SD pair is required");
        let per_pair = self.max_sensitivity_per_pair(graph, ratios);
        graph.dot_const(per_pair, Arc::new(weights.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TeConfig;
    use crate::mlu::max_link_utilization_pairs;
    use crate::sensitivity::robustness_penalty;
    use figret_nn::Tensor;
    use figret_topology::{Topology, TopologySpec};

    fn setup() -> (PathSet, DiffTe) {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let d = DiffTe::new(&ps);
        (ps, d)
    }

    #[test]
    fn differentiable_mlu_matches_reference_implementation() {
        let (ps, diff) = setup();
        let mut g = Graph::new();
        g.seal();
        let raw_values: Vec<f64> = (0..ps.num_paths()).map(|i| (i as f64 * 0.37).sin()).collect();
        let raw = g.input(Tensor::row(&raw_values));
        let ratios = diff.ratios_from_raw(&mut g, raw);
        let demand: Vec<f64> = (0..ps.num_pairs()).map(|i| 10.0 + i as f64).collect();
        let mlu = diff.mlu(&mut g, ratios, &demand, MluAggregation::Max);

        // Reference: build a TeConfig from the same ratios and evaluate.
        let cfg = TeConfig::from_raw(&ps, g.value(ratios).data());
        let reference = max_link_utilization_pairs(&ps, &cfg, &demand);
        assert!((g.value(mlu).as_scalar() - reference).abs() < 1e-9);
    }

    #[test]
    fn smooth_max_upper_bounds_exact_max() {
        let (ps, diff) = setup();
        let mut g = Graph::new();
        g.seal();
        let raw = g.input(Tensor::zeros(1, ps.num_paths()));
        let ratios = diff.ratios_from_raw(&mut g, raw);
        let demand = vec![25.0; ps.num_pairs()];
        let exact = diff.mlu(&mut g, ratios, &demand, MluAggregation::Max);
        let smooth = diff.mlu(&mut g, ratios, &demand, MluAggregation::SmoothMax(0.01));
        let e = g.value(exact).as_scalar();
        let s = g.value(smooth).as_scalar();
        assert!(s >= e);
        assert!(s - e < 0.05 * e + 0.05, "smooth max too loose: {s} vs {e}");
    }

    #[test]
    fn sensitivity_penalty_matches_reference() {
        let (ps, diff) = setup();
        let mut g = Graph::new();
        g.seal();
        let raw = g.input(Tensor::row(&vec![0.3; ps.num_paths()]));
        let ratios = diff.ratios_from_raw(&mut g, raw);
        let weights: Vec<f64> = (0..ps.num_pairs()).map(|i| i as f64 * 0.5).collect();
        let penalty = diff.sensitivity_penalty(&mut g, ratios, &weights);
        let cfg = TeConfig::from_raw(&ps, g.value(ratios).data());
        let reference = robustness_penalty(&ps, &cfg, &weights);
        assert!((g.value(penalty).as_scalar() - reference).abs() < 1e-9);
    }

    #[test]
    fn batched_mlu_matches_per_sample_mlu() {
        let (ps, diff) = setup();
        let batch = 3;
        let demands: Vec<Vec<f64>> = (0..batch)
            .map(|b| (0..ps.num_pairs()).map(|i| 5.0 + (b * 7 + i) as f64).collect())
            .collect();
        let raws: Vec<Vec<f64>> = (0..batch)
            .map(|b| {
                (0..ps.num_paths()).map(|i| ((b + 2) as f64 * 0.31 * i as f64).cos()).collect()
            })
            .collect();

        // Batched: one graph pass over all samples.
        let mut g = Graph::new();
        g.seal();
        let mut stacked = Vec::new();
        for r in &raws {
            stacked.extend_from_slice(r);
        }
        let raw = g.input(Tensor::from_vec(batch, ps.num_paths(), stacked));
        let ratios = diff.ratios_from_raw(&mut g, raw);
        let flat_demands: Vec<f64> = demands.iter().flatten().cloned().collect();
        let mlu_col = diff.mlu_batch(&mut g, ratios, &flat_demands, MluAggregation::Max);
        assert_eq!(g.value(mlu_col).shape(), (batch, 1));
        let penalty_weights: Vec<f64> = (0..ps.num_pairs()).map(|i| 0.1 * i as f64).collect();
        let pen_col = diff.sensitivity_penalty(&mut g, ratios, &penalty_weights);
        assert_eq!(g.value(pen_col).shape(), (batch, 1));
        let batched_mlus = g.value(mlu_col).data().to_vec();
        let batched_pens = g.value(pen_col).data().to_vec();

        // Reference: one graph pass per sample.
        for b in 0..batch {
            let mut g1 = Graph::new();
            g1.seal();
            let raw1 = g1.input(Tensor::row(&raws[b]));
            let ratios1 = diff.ratios_from_raw(&mut g1, raw1);
            let mlu1 = diff.mlu(&mut g1, ratios1, &demands[b], MluAggregation::Max);
            assert!((batched_mlus[b] - g1.value(mlu1).as_scalar()).abs() < 1e-12);
            let pen1 = diff.sensitivity_penalty(&mut g1, ratios1, &penalty_weights);
            assert!((batched_pens[b] - g1.value(pen1).as_scalar()).abs() < 1e-12);
        }
    }

    #[test]
    fn gradients_reach_the_raw_weights() {
        let (ps, diff) = setup();
        let mut g = Graph::new();
        let raw = g.parameter(Tensor::zeros(1, ps.num_paths()));
        g.seal();
        let ratios = diff.ratios_from_raw(&mut g, raw);
        let demand = vec![30.0; ps.num_pairs()];
        let mlu = diff.mlu(&mut g, ratios, &demand, MluAggregation::SmoothMax(0.05));
        g.backward(mlu);
        assert!(g.grad(raw).norm() > 0.0, "MLU must depend on the raw weights");
        assert_eq!(diff.num_paths(), ps.num_paths());
        assert_eq!(diff.num_pairs(), ps.num_pairs());
    }
}
