//! Routing churn: how much a reconfiguration moves traffic.
//!
//! An online controller pays for every update it pushes to the network:
//! changing split ratios reorders flows, perturbs congestion control and
//! consumes switch-table update budget.  The churn of an update is measured
//! as the L1 distance between the old and new split-ratio vectors,
//! `Σ_p |r'_p − r_p|` — twice the total fraction of per-pair traffic that
//! moves to a different path, summed over pairs (each unit of traffic that
//! moves is counted once leaving its old path and once arriving on the new
//! one).  A no-op update has churn 0; fully re-routing one pair contributes
//! at most 2.

use crate::config::TeConfig;

/// L1 distance between the split-ratio vectors of two configurations
/// (`Σ_p |a_p − b_p|`).  Both configurations must cover the same path set.
pub fn split_ratio_churn(a: &TeConfig, b: &TeConfig) -> f64 {
    assert_eq!(
        a.ratios().len(),
        b.ratios().len(),
        "churn requires configurations over the same path set"
    );
    a.ratios().iter().zip(b.ratios()).map(|(x, y)| (x - y).abs()).sum()
}

/// Mean churn between consecutive configurations of a series (0.0 for a
/// series of fewer than two configurations).  The series is interpreted as
/// the deployed configuration per snapshot, in snapshot order.
pub fn mean_series_churn(configs: &[TeConfig]) -> f64 {
    if configs.len() < 2 {
        return 0.0;
    }
    let total: f64 = configs.windows(2).map(|w| split_ratio_churn(&w[0], &w[1])).sum();
    total / (configs.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathset::PathSet;
    use figret_topology::{Topology, TopologySpec};

    fn pod_paths() -> PathSet {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        PathSet::k_shortest(&g, 3)
    }

    #[test]
    fn identical_configs_have_zero_churn() {
        let ps = pod_paths();
        let a = TeConfig::uniform(&ps);
        assert_eq!(split_ratio_churn(&a, &a), 0.0);
        assert_eq!(mean_series_churn(&[a.clone(), a.clone(), a]), 0.0);
    }

    #[test]
    fn churn_is_symmetric_and_bounded_per_pair() {
        let ps = pod_paths();
        let a = TeConfig::uniform(&ps);
        let b = TeConfig::shortest_path(&ps);
        let ab = split_ratio_churn(&a, &b);
        let ba = split_ratio_churn(&b, &a);
        assert!((ab - ba).abs() < 1e-15);
        assert!(ab > 0.0);
        // Each pair's ratios sum to one in both configs, so the per-pair L1
        // distance is at most 2 and the total at most 2 * num_pairs.
        assert!(ab <= 2.0 * ps.num_pairs() as f64 + 1e-9);
    }

    #[test]
    fn mean_series_churn_averages_steps() {
        let ps = pod_paths();
        let a = TeConfig::uniform(&ps);
        let b = TeConfig::shortest_path(&ps);
        let step = split_ratio_churn(&a, &b);
        // a -> b -> b: one churning step, one static step.
        let mean = mean_series_churn(&[a.clone(), b.clone(), b.clone()]);
        assert!((mean - step / 2.0).abs() < 1e-12);
        assert_eq!(mean_series_churn(&[a]), 0.0);
        assert_eq!(mean_series_churn(&[]), 0.0);
    }

    #[test]
    fn lerp_moves_churn_proportionally() {
        let ps = pod_paths();
        let a = TeConfig::uniform(&ps);
        let b = TeConfig::shortest_path(&ps);
        let half = a.lerp(&b, 0.5);
        let full = split_ratio_churn(&a, &b);
        assert!((split_ratio_churn(&a, &half) - 0.5 * full).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same path set")]
    fn churn_rejects_mismatched_configs() {
        let ps = pod_paths();
        let a = TeConfig::uniform(&ps);
        let other = {
            let g = TopologySpec::full_scale(Topology::Geant).build();
            let ps2 = PathSet::k_shortest(&g, 3);
            TeConfig::uniform(&ps2)
        };
        split_ratio_churn(&a, &other);
    }
}
