//! TE configurations: per-path split ratios.
//!
//! A TE configuration `R` assigns every candidate path `p ∈ P_sd` a split
//! ratio `r_p ≥ 0` with `Σ_{p ∈ P_sd} r_p = 1` (§3 of the paper).  Ratios are
//! stored flat, indexed by the global path index of the associated
//! [`crate::pathset::PathSet`].

use crate::pathset::{PairIndex, PathSet};

/// A TE configuration: one split ratio per candidate path.
#[derive(Debug, Clone, PartialEq)]
pub struct TeConfig {
    ratios: Vec<f64>,
}

/// Tolerance used when validating that split ratios sum to one.
pub const RATIO_TOLERANCE: f64 = 1e-6;

impl Default for TeConfig {
    /// An empty configuration (no paths).  Useful as a reusable buffer for
    /// [`TeConfig::assign_from_raw`]; not valid for any non-empty path set.
    fn default() -> TeConfig {
        TeConfig { ratios: Vec::new() }
    }
}

impl TeConfig {
    /// A configuration that splits every pair's traffic uniformly over its
    /// candidate paths.
    pub fn uniform(paths: &PathSet) -> TeConfig {
        let mut ratios = vec![0.0; paths.num_paths()];
        for pair in 0..paths.num_pairs() {
            let range = paths.paths_of_pair(pair);
            let n = range.len();
            if n == 0 {
                continue;
            }
            for pi in range {
                ratios[pi] = 1.0 / n as f64;
            }
        }
        TeConfig { ratios }
    }

    /// A configuration that sends every pair's traffic on its first candidate
    /// path (the shortest path for a k-shortest path set).
    pub fn shortest_path(paths: &PathSet) -> TeConfig {
        let mut ratios = vec![0.0; paths.num_paths()];
        for pair in 0..paths.num_pairs() {
            let range = paths.paths_of_pair(pair);
            if let Some(first) = range.clone().next() {
                ratios[first] = 1.0;
            }
        }
        TeConfig { ratios }
    }

    /// Builds a configuration from raw ratios (one per global path index).
    ///
    /// The ratios of every pair are renormalized to sum to one; pairs whose
    /// ratios are all zero (or that have no paths) fall back to a uniform
    /// split, mirroring how the paper normalizes neural-network outputs (§6,
    /// "enforced by normalizing the outputs").  Negative inputs are clamped.
    pub fn from_raw(paths: &PathSet, raw: &[f64]) -> TeConfig {
        let mut config = TeConfig::default();
        config.assign_from_raw(paths, raw);
        config
    }

    /// In-place [`TeConfig::from_raw`]: identical arithmetic, but reuses this
    /// configuration's ratio buffer instead of allocating a new one (the
    /// serving hot path calls this once per decision).
    pub fn assign_from_raw(&mut self, paths: &PathSet, raw: &[f64]) {
        assert_eq!(raw.len(), paths.num_paths(), "one ratio per path is required");
        self.ratios.clear();
        self.ratios.resize(paths.num_paths(), 0.0);
        for pair in 0..paths.num_pairs() {
            let range = paths.paths_of_pair(pair);
            let n = range.len();
            if n == 0 {
                continue;
            }
            let sum: f64 = range.clone().map(|pi| raw[pi].max(0.0)).sum();
            if sum > 0.0 {
                for pi in range {
                    self.ratios[pi] = raw[pi].max(0.0) / sum;
                }
            } else {
                for pi in range {
                    self.ratios[pi] = 1.0 / n as f64;
                }
            }
        }
    }

    /// Builds a configuration directly from per-path ratios the caller
    /// guarantees are already normalized per pair.  No validation is
    /// performed — prefer [`TeConfig::from_normalized`] unless the invariant
    /// is structural (e.g. splicing two valid configurations over disjoint
    /// pair sets, as the restricted LP templates do).
    pub fn from_ratios_unchecked(ratios: Vec<f64>) -> TeConfig {
        TeConfig { ratios }
    }

    /// Builds a configuration from ratios that are already normalized.
    ///
    /// Returns `None` if any pair's ratios do not sum to one within
    /// [`RATIO_TOLERANCE`] or if a ratio is negative/non-finite.
    pub fn from_normalized(paths: &PathSet, ratios: Vec<f64>) -> Option<TeConfig> {
        if ratios.len() != paths.num_paths() {
            return None;
        }
        if ratios.iter().any(|r| !r.is_finite() || *r < -RATIO_TOLERANCE) {
            return None;
        }
        for pair in 0..paths.num_pairs() {
            let range = paths.paths_of_pair(pair);
            if range.is_empty() {
                continue;
            }
            let sum: f64 = range.map(|pi| ratios[pi]).sum();
            if (sum - 1.0).abs() > RATIO_TOLERANCE {
                return None;
            }
        }
        Some(TeConfig { ratios })
    }

    /// The split ratio of a path.
    #[inline]
    pub fn ratio(&self, path: usize) -> f64 {
        self.ratios[path]
    }

    /// All ratios, indexed by global path index.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Mutable access to the ratios (used by solvers while constructing a
    /// configuration; call [`TeConfig::from_raw`] afterwards to re-normalize).
    pub fn ratios_mut(&mut self) -> &mut [f64] {
        &mut self.ratios
    }

    /// Validates that every pair's ratios sum to one (within tolerance).
    pub fn is_valid(&self, paths: &PathSet) -> bool {
        if self.ratios.len() != paths.num_paths() {
            return false;
        }
        for pair in 0..paths.num_pairs() {
            let range = paths.paths_of_pair(pair);
            if range.is_empty() {
                continue;
            }
            let sum: f64 = range.map(|pi| self.ratios[pi]).sum();
            if (sum - 1.0).abs() > RATIO_TOLERANCE {
                return false;
            }
        }
        self.ratios.iter().all(|r| r.is_finite() && *r >= -RATIO_TOLERANCE)
    }

    /// The split ratios of one pair as `(global path index, ratio)` tuples.
    pub fn pair_ratios<'a>(
        &'a self,
        paths: &PathSet,
        pair: PairIndex,
    ) -> impl Iterator<Item = (usize, f64)> + 'a {
        paths.paths_of_pair(pair).map(move |pi| (pi, self.ratios[pi]))
    }

    /// Element-wise convex combination with another configuration:
    /// `(1 - t) * self + t * other`.
    pub fn lerp(&self, other: &TeConfig, t: f64) -> TeConfig {
        assert_eq!(self.ratios.len(), other.ratios.len(), "configurations must match");
        let ratios =
            self.ratios.iter().zip(&other.ratios).map(|(a, b)| (1.0 - t) * a + t * b).collect();
        TeConfig { ratios }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Topology, TopologySpec};

    fn pod_paths() -> PathSet {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        PathSet::k_shortest(&g, 3)
    }

    #[test]
    fn uniform_and_shortest_are_valid() {
        let ps = pod_paths();
        assert!(TeConfig::uniform(&ps).is_valid(&ps));
        let sp = TeConfig::shortest_path(&ps);
        assert!(sp.is_valid(&ps));
        // Shortest-path config puts full weight on exactly one path per pair.
        for pair in 0..ps.num_pairs() {
            let ones = sp.pair_ratios(&ps, pair).filter(|(_, r)| (*r - 1.0).abs() < 1e-12).count();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn from_raw_normalizes_and_handles_zeros() {
        let ps = pod_paths();
        let mut raw = vec![0.0; ps.num_paths()];
        // Give pair 0 unnormalized weights 2, 6, 2 -> 0.2, 0.6, 0.2.
        let range: Vec<usize> = ps.paths_of_pair(0).collect();
        raw[range[0]] = 2.0;
        raw[range[1]] = 6.0;
        raw[range[2]] = 2.0;
        let cfg = TeConfig::from_raw(&ps, &raw);
        assert!(cfg.is_valid(&ps));
        assert!((cfg.ratio(range[1]) - 0.6).abs() < 1e-12);
        // Pairs with all-zero raw ratios fall back to uniform.
        let uniform_pair: Vec<f64> = cfg.pair_ratios(&ps, 1).map(|(_, r)| r).collect();
        assert!(uniform_pair.iter().all(|r| (*r - 1.0 / uniform_pair.len() as f64).abs() < 1e-12));
        // Negative values are clamped.
        raw[range[0]] = -5.0;
        let cfg2 = TeConfig::from_raw(&ps, &raw);
        assert_eq!(cfg2.ratio(range[0]), 0.0);
        assert!(cfg2.is_valid(&ps));
    }

    #[test]
    fn from_normalized_validates() {
        let ps = pod_paths();
        let uniform = TeConfig::uniform(&ps);
        assert!(TeConfig::from_normalized(&ps, uniform.ratios().to_vec()).is_some());
        let mut bad = uniform.ratios().to_vec();
        bad[0] += 0.5;
        assert!(TeConfig::from_normalized(&ps, bad).is_none());
        assert!(TeConfig::from_normalized(&ps, vec![0.0; 3]).is_none());
        let mut neg = uniform.ratios().to_vec();
        neg[0] = -1.0;
        neg[1] = 1.0 + uniform.ratio(0);
        assert!(TeConfig::from_normalized(&ps, neg).is_none());
    }

    #[test]
    fn lerp_preserves_validity() {
        let ps = pod_paths();
        let a = TeConfig::uniform(&ps);
        let b = TeConfig::shortest_path(&ps);
        let mid = a.lerp(&b, 0.3);
        assert!(mid.is_valid(&ps));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }
}
