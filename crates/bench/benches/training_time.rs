//! Table 2 — precomputation (training) time.
//!
//! Benchmarks one FIGRET training epoch and one TEAL-like training epoch on
//! the PoD-level fabric, the quantities behind the "Precomp. time" columns of
//! Table 2 (FIGRET vs. TEAL).  Full training multiplies the per-epoch cost by
//! the configured epoch count.

use criterion::{criterion_group, criterion_main, Criterion};

use figret::{FigretConfig, FigretModel, TealLikeModel};
use figret_bench::bench_setup;
use figret_topology::Topology;
use figret_traffic::{per_pair_variance_range, WindowDataset};

fn training_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_training_time");
    group.sample_size(10);

    let scenario = bench_setup(Topology::MetaDbPod, 120);
    let window = 8;
    let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
    let dataset = WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
    let one_epoch = FigretConfig { history_window: window, epochs: 1, ..FigretConfig::fast_test() };

    group.bench_function("figret_one_epoch_pod_db", |b| {
        b.iter(|| {
            let mut model = FigretModel::new(&scenario.paths, &variances, one_epoch.clone());
            model.train(&dataset)
        })
    });
    group.bench_function("teal_like_one_epoch_pod_db", |b| {
        b.iter(|| {
            let mut model = TealLikeModel::new(&scenario.paths, one_epoch.clone());
            model.train(&dataset)
        })
    });

    // The speedup the batched execution core buys: a forced serial
    // single-sample configuration (the seed's original update rule, one Adam
    // step per sample) against the batched data-parallel path.
    let batch1_serial = FigretConfig { batch_size: 1, ..one_epoch.clone() };
    group.bench_function("figret_one_epoch_batch1_serial", |b| {
        b.iter(|| {
            let mut model = FigretModel::new(&scenario.paths, &variances, batch1_serial.clone());
            model.train(&dataset)
        })
    });
    let batched_parallel = FigretConfig { batch_size: 32, ..one_epoch.clone() };
    group.bench_function("figret_one_epoch_batch32_parallel", |b| {
        b.iter(|| {
            let mut model = FigretModel::new(&scenario.paths, &variances, batched_parallel.clone());
            model.train(&dataset)
        })
    });
    group.finish();
}

criterion_group!(benches, training_time);
criterion_main!(benches);
