//! telemetry_cost — what arming out-of-band metrics costs (DESIGN.md §10).
//!
//! * `step_plan_disarmed` / `step_plan_armed` — one full controller tick on
//!   the compiled f32 inference plan (the production hot path), with and
//!   without telemetry.  The acceptance bar is ≤ 5 % added p50 latency:
//!   armed ticks pay four `Instant` reads plus a handful of dense-`Vec`
//!   index-adds, nothing else.
//! * `fleet_snapshot_512tor` — cloning the fleet registry and merging all
//!   shard registries in stable order, on a 512-ToR / 4-shard LP fleet.
//! * `fleet_exposition_512tor` — rendering that merged registry as
//!   Prometheus text (what one `--metrics-every` snapshot costs on top of
//!   the merge).
//!
//! Recorded to `BENCH_pr10.json` via `CRITERION_JSON`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret::{FigretConfig, FigretModel};
use figret_bench::bench_setup;
use figret_bench::fleet::{fleet_case, warmed_lp_fleet, WINDOW as FLEET_WINDOW};
use figret_serve::{PredictorKind, ReconfigPolicy, ServeController};
use figret_telemetry::exposition;
use figret_traffic::{per_pair_variance_range, DemandMatrix, WindowDataset};

const WINDOW: usize = 8;

fn cycling_demands(scenario: &figret_bench::Scenario) -> Vec<DemandMatrix> {
    let t = scenario.trace.len();
    (t - 6..t).map(|h| scenario.trace.matrix(h).clone()).collect()
}

fn warmed_plan_controller(scenario: &figret_bench::Scenario) -> ServeController {
    let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
    let dataset = WindowDataset::from_trace(&scenario.trace, WINDOW, scenario.split.train.clone());
    let mut model = FigretModel::new(
        &scenario.paths,
        &variances,
        FigretConfig { history_window: WINDOW, epochs: 2, ..FigretConfig::fast_test() },
    );
    model.train(&dataset);
    let mut controller = ServeController::learned(
        &scenario.paths,
        model,
        PredictorKind::LastValue.build(),
        ReconfigPolicy::always_update(),
    );
    controller.enable_inference_plan();
    for t in 0..WINDOW {
        controller.observe(scenario.trace.matrix(t));
    }
    controller
}

fn step_plan_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_cost");
    group.sample_size(20);
    for topology in [figret_topology::Topology::Geant, figret_topology::Topology::MetaDbTor] {
        let scenario = bench_setup(topology, 120);
        let demands = cycling_demands(&scenario);
        for armed in [false, true] {
            let mut controller = warmed_plan_controller(&scenario);
            if armed {
                controller.enable_telemetry();
            }
            let label = if armed { "step_plan_armed" } else { "step_plan_disarmed" };
            let mut cursor = 0usize;
            group.bench_with_input(BenchmarkId::new(label, scenario.name.clone()), &(), |b, _| {
                b.iter(|| {
                    cursor = (cursor + 1) % demands.len();
                    controller.step(&demands[cursor])
                })
            });
        }
    }
    group.finish();
}

fn snapshot_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_cost");
    group.sample_size(10);
    let case = fleet_case(512, true);
    let mut fleet = warmed_lp_fleet(&case, 4);
    fleet.enable_telemetry();
    // Populate every shard registry with real samples before measuring.
    for cursor in FLEET_WINDOW..FLEET_WINDOW + 4 {
        fleet.step_sparse(case.trace.snapshot(cursor));
    }
    group.bench_with_input(BenchmarkId::new("fleet_snapshot_512tor", "4 shards"), &(), |b, _| {
        b.iter(|| fleet.telemetry_snapshot().expect("armed fleet"))
    });
    let registry = fleet.telemetry_snapshot().expect("armed fleet");
    group.bench_with_input(BenchmarkId::new("fleet_exposition_512tor", "4 shards"), &(), |b, _| {
        b.iter(|| exposition(&registry))
    });
    group.finish();
}

criterion_group!(benches, step_plan_cost, snapshot_cost);
criterion_main!(benches);
