//! inference_plan — the compiled f32 forward pass vs. the f64 graph.
//!
//! Benchmarks the pure inference cost of one TE decision, isolated from the
//! controller loop: `plan_forward` runs the compiled [`figret::InferencePlan`]
//! (flat f32 buffers, no tape, no allocation) over a pre-flattened feature
//! window; `graph_predict` runs the same trained model through the f64
//! autodiff graph (`FigretModel::predict`), which is both the training path
//! and the numerical reference the plan is property-tested against.  The
//! ratio between the two is the speedup the zero-alloc hot path buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret::{FigretConfig, FigretModel};
use figret_bench::bench_setup;
use figret_traffic::{per_pair_variance_range, DemandMatrix, WindowDataset};

const WINDOW: usize = 8;

fn trained_model(scenario: &figret_bench::Scenario) -> FigretModel {
    let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
    let dataset = WindowDataset::from_trace(&scenario.trace, WINDOW, scenario.split.train.clone());
    let mut model = FigretModel::new(
        &scenario.paths,
        &variances,
        FigretConfig { history_window: WINDOW, epochs: 2, ..FigretConfig::fast_test() },
    );
    model.train(&dataset);
    model
}

fn inference_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_plan");
    group.sample_size(20);

    for topology in [figret_topology::Topology::Geant, figret_topology::Topology::MetaDbTor] {
        let scenario = bench_setup(topology, 120);
        let mut model = trained_model(&scenario);
        let mut plan = model.compile_plan();

        let t = scenario.trace.len();
        let history: Vec<DemandMatrix> =
            (t - WINDOW..t).map(|h| scenario.trace.matrix(h).clone()).collect();
        let num_pairs = scenario.paths.num_pairs();
        let mut features = vec![0.0; plan.input_dim()];
        for (i, matrix) in history.iter().enumerate() {
            matrix.flatten_pairs_into(&mut features[i * num_pairs..(i + 1) * num_pairs]);
        }
        let mut raw = vec![0.0; plan.output_dim()];

        group.bench_with_input(
            BenchmarkId::new("plan_forward", scenario.name.clone()),
            &(),
            |b, _| {
                b.iter(|| {
                    plan.forward(&features, &mut raw);
                    raw[0]
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("graph_predict", scenario.name.clone()),
            &(),
            |b, _| b.iter(|| model.predict(&scenario.paths, &history)),
        );
    }
    group.finish();
}

criterion_group!(benches, inference_plan);
criterion_main!(benches);
