//! fleet_inference — learned-inference fleet throughput (DESIGN.md §8).
//!
//! The sharded counterpart of the `inference_plan` bench: every shard
//! serves the compiled f32 `InferencePlan` (the paper's fast path) with
//! the LP audit disabled, so a fleet tick is scatter → batched
//! matrix-vector inference per shard → admit → finish → merge, and never
//! touches the solver.  This is the configuration that clears the
//! single-core LP repricing ceiling (~1.7 µs/pair — see `shard_scale`)
//! by an order of magnitude and carries the ≥1M decisions/sec headline
//! in BENCH_pr8.json.
//!
//! Weights are at initialisation: inference cost is weight-independent,
//! and restricted-universe training is an open ROADMAP item, so this
//! measures serving throughput, not TE quality.
//!
//! Separate from `shard_scale` so the two can run independently (the
//! vendored criterion has no name filtering, and the monolithic LP
//! baselines there take minutes per sample).  Thread-count comparisons
//! come from separate runs — the vendored rayon reads
//! `RAYON_NUM_THREADS` once per process.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret::FigretConfig;
use figret_bench::fleet::{fleet_case, warmed_learned_fleet};

fn learned_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_inference");
    group.sample_size(10);
    let config = FigretConfig::fast_test();
    let window = config.history_window;
    for tors in [512, 1024] {
        let case = fleet_case(tors, true);
        for shards in [4, 16] {
            let mut fleet = warmed_learned_fleet(&case, shards, &config);
            let mut cursor = window;
            let id = BenchmarkId::new("learned_tick", format!("{tors} ToRs/{shards} shards"));
            group.bench_with_input(id, &(), |b, _| {
                b.iter(|| {
                    cursor = window + (cursor + 1 - window) % (case.trace.len() - window);
                    fleet.step_sparse(case.trace.snapshot(cursor))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, learned_tick);
criterion_main!(benches);
