//! serve_step_latency — per-decision latency of the online TE controller.
//!
//! Benchmarks one full controller tick (forecast → candidate → policy gates
//! → deploy → ingest) on GEANT and on the (reduced) ToR-level DB fabric,
//! for both engines:
//!
//! * `step_lp` — the candidate is a warm-started LP re-solve through the
//!   min-MLU template (what the controller pays after a fallback);
//! * `step_model` — the candidate is one forward pass of a trained FIGRET
//!   model through the f64 autodiff graph (audits disabled so no LP is
//!   touched);
//! * `step_model_plan` — the same tick served from the compiled f32
//!   inference plan (the zero-alloc hot path).
//!
//! The policy is `always_update`, so every tick pays the full decision cost
//! — the worst case a serving deployment budgets for.  Recorded to
//! `BENCH_pr6.json` via `CRITERION_JSON`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret::{FigretConfig, FigretModel};
use figret_bench::bench_setup;
use figret_serve::{PredictorKind, ReconfigPolicy, ServeController};
use figret_traffic::{per_pair_variance_range, DemandMatrix, WindowDataset};

const WINDOW: usize = 8;

fn cycling_demands(scenario: &figret_bench::Scenario) -> Vec<DemandMatrix> {
    let t = scenario.trace.len();
    (t - 6..t).map(|h| scenario.trace.matrix(h).clone()).collect()
}

fn warmed_lp_controller(scenario: &figret_bench::Scenario) -> ServeController {
    let mut controller = ServeController::lp(
        &scenario.paths,
        WINDOW,
        PredictorKind::LastValue.build(),
        ReconfigPolicy::always_update(),
    );
    for t in 0..WINDOW {
        controller.observe(scenario.trace.matrix(t));
    }
    controller
}

fn warmed_model_controller(scenario: &figret_bench::Scenario) -> ServeController {
    let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
    let dataset = WindowDataset::from_trace(&scenario.trace, WINDOW, scenario.split.train.clone());
    let mut model = FigretModel::new(
        &scenario.paths,
        &variances,
        FigretConfig { history_window: WINDOW, epochs: 2, ..FigretConfig::fast_test() },
    );
    model.train(&dataset);
    let mut controller = ServeController::learned(
        &scenario.paths,
        model,
        PredictorKind::LastValue.build(),
        ReconfigPolicy::always_update(),
    );
    for t in 0..WINDOW {
        controller.observe(scenario.trace.matrix(t));
    }
    controller
}

fn serve_step_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_step_latency");
    group.sample_size(20);

    for topology in [figret_topology::Topology::Geant, figret_topology::Topology::MetaDbTor] {
        let scenario = bench_setup(topology, 120);
        let demands = cycling_demands(&scenario);

        let mut lp = warmed_lp_controller(&scenario);
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::new("step_lp", scenario.name.clone()), &(), |b, _| {
            b.iter(|| {
                cursor = (cursor + 1) % demands.len();
                lp.step(&demands[cursor])
            })
        });

        let mut learned = warmed_model_controller(&scenario);
        let mut cursor = 0usize;
        group.bench_with_input(
            BenchmarkId::new("step_model", scenario.name.clone()),
            &(),
            |b, _| {
                b.iter(|| {
                    cursor = (cursor + 1) % demands.len();
                    learned.step(&demands[cursor])
                })
            },
        );

        // Same tick, but inference runs through the compiled f32 plan — the
        // zero-alloc hot path a production controller would serve from.
        let mut planned = warmed_model_controller(&scenario);
        planned.enable_inference_plan();
        let mut cursor = 0usize;
        group.bench_with_input(
            BenchmarkId::new("step_model_plan", scenario.name.clone()),
            &(),
            |b, _| {
                b.iter(|| {
                    cursor = (cursor + 1) % demands.len();
                    planned.step(&demands[cursor])
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, serve_step_latency);
criterion_main!(benches);
