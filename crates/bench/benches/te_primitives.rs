//! Micro-benchmarks of the TE substrate primitives used by every experiment:
//! Yen path pre-computation (§5.1), MLU evaluation (Function 1) and failure
//! rerouting (§4.5).  These bound the cost of the evaluation harness itself.

use criterion::{criterion_group, criterion_main, Criterion};

use figret_bench::bench_setup;
use figret_te::{max_link_utilization, reroute_around_failures, PathSet, TeConfig};
use figret_topology::{random_link_failures, Topology, TopologySpec};

fn te_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("te_primitives");
    group.sample_size(10);

    let geant = TopologySpec::full_scale(Topology::Geant).build();
    group.bench_function("yen_3_shortest_paths_geant", |b| {
        b.iter(|| PathSet::k_shortest(&geant, 3))
    });

    let scenario = bench_setup(Topology::Geant, 40);
    let config = TeConfig::uniform(&scenario.paths);
    let demand = scenario.trace.matrix(scenario.trace.len() - 1).clone();
    group.bench_function("mlu_evaluation_geant", |b| {
        b.iter(|| max_link_utilization(&scenario.paths, &config, &demand))
    });

    let failure = random_link_failures(&scenario.graph, 2, 9).expect("GEANT survives 2 failures");
    group.bench_function("failure_rerouting_geant", |b| {
        b.iter(|| reroute_around_failures(&scenario.paths, &config, &failure))
    });
    group.finish();
}

criterion_group!(benches, te_primitives);
criterion_main!(benches);
