//! shard_scale — LP fleet throughput vs. shard count (DESIGN.md §8).
//!
//! Measures one full fleet tick (scatter → propose ∥ → admit → finish ∥ →
//! merge) on random-regular ToR fabrics at 256/512/1024 ToRs, as a function
//! of the shard count, in two regimes:
//!
//! * `steady_tick` — steady-state traffic (no pair churn, no bursts): the
//!   warm-started shard LPs re-price an already-optimal basis, so this is
//!   the peak decision throughput of the LP fleet.  Aggregate decisions/sec
//!   = `active pairs / tick seconds`.
//! * `bursty_tick` — the default on/off + burst workload: every tick moves
//!   demand, so shard LPs genuinely pivot.  This is where partitioning wins
//!   superlinearly — warm re-solve cost grows much faster than linearly in
//!   the pair count (BENCH_pr7.json records multi-minute degenerate crawls
//!   of the monolithic 8k-pair template), so `N` small templates beat one
//!   big one even on a single core.  The monolithic baseline is benchmarked
//!   at 256 ToRs only; at 512+ its degenerate re-solves blow the benchmark
//!   budget (the `serve_sim --shards 1` runs recorded in BENCH_pr8.json
//!   bound it instead).
//!
//! The learned-inference fleet (the paper's fast path) is benchmarked by
//! the separate `fleet_inference` bench target, so the two can run
//! independently — the vendored criterion has no name filtering.
//!
//! Thread count: the vendored rayon reads `RAYON_NUM_THREADS` once per
//! process, so per-thread-count numbers come from separate bench runs
//! (recorded side by side in BENCH_pr8.json).  Recorded via `CRITERION_JSON`.
//!
//! `SHARD_SCALE_MONOLITH_CAP=<tors>` lowers the monolithic (1-shard)
//! baseline's size cap for *both* regimes — the 1024-ToR steady monolith
//! alone costs tens of minutes (its cold crash-basis solve), so repeat
//! passes (e.g. the 1-thread run) can skip it once one pass recorded it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret_bench::fleet::{fleet_case, warmed_lp_fleet, WINDOW};

const SIZES: [usize; 3] = [256, 512, 1024];
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

fn monolith_cap(default: usize) -> usize {
    std::env::var("SHARD_SCALE_MONOLITH_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(default, |cap: usize| cap.min(default))
}

fn bench_regime(c: &mut Criterion, label: &str, steady: bool, monolith_cap: usize) {
    let mut group = c.benchmark_group("shard_scale");
    group.sample_size(5);
    for tors in SIZES {
        let case = fleet_case(tors, steady);
        for shards in SHARD_COUNTS {
            if shards == 1 && tors > monolith_cap {
                continue;
            }
            let mut fleet = warmed_lp_fleet(&case, shards);
            let mut cursor = WINDOW;
            let id = BenchmarkId::new(label, format!("{tors} ToRs/{shards} shards"));
            group.bench_with_input(id, &(), |b, _| {
                b.iter(|| {
                    cursor = WINDOW + (cursor + 1 - WINDOW) % (case.trace.len() - WINDOW);
                    fleet.step_sparse(case.trace.snapshot(cursor))
                })
            });
        }
    }
    group.finish();
}

fn steady_tick(c: &mut Criterion) {
    bench_regime(c, "steady_tick", true, monolith_cap(usize::MAX));
}

fn bursty_tick(c: &mut Criterion) {
    bench_regime(c, "bursty_tick", false, monolith_cap(256));
}

criterion_group!(benches, steady_tick, bursty_tick);
criterion_main!(benches);
