//! Table 2 — per-snapshot TE calculation time.
//!
//! Benchmarks the time to compute one TE configuration for a new demand
//! matrix with (a) a trained FIGRET model (one forward pass), (b) the plain
//! min-MLU LP ("LP" column) and (c) desensitization-based TE ("Des TE"
//! column), on GEANT and on the (reduced) ToR-level DB fabric.  The speedup of
//! FIGRET over the LP-based schemes is the quantity Table 2 reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret::{FigretConfig, FigretModel};
use figret_bench::bench_setup;
use figret_solvers::{
    desensitization_config, omniscient_config, DesensitizationSettings, SolverEngine,
};
use figret_traffic::{per_pair_variance_range, WindowDataset};

fn solver_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_solver_time");
    group.sample_size(10);

    for topology in [figret_topology::Topology::Geant, figret_topology::Topology::MetaDbTor] {
        let scenario = bench_setup(topology, 120);
        let window = 8;
        let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
        let dataset =
            WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
        let mut model = FigretModel::new(
            &scenario.paths,
            &variances,
            FigretConfig { history_window: window, epochs: 2, ..FigretConfig::fast_test() },
        );
        model.train(&dataset);
        let t = scenario.trace.len() - 1;
        let history: Vec<_> = (t - window..t).map(|h| scenario.trace.matrix(h).clone()).collect();
        let demand = scenario.trace.matrix(t).clone();

        group.bench_with_input(
            BenchmarkId::new("figret_forward", scenario.name.clone()),
            &(),
            |b, _| b.iter(|| model.predict(&scenario.paths, &history)),
        );
        group.bench_with_input(
            BenchmarkId::new("lp_min_mlu", scenario.name.clone()),
            &(),
            |b, _| {
                b.iter(|| omniscient_config(&scenario.paths, &demand, SolverEngine::Auto).unwrap())
            },
        );
        group.bench_with_input(BenchmarkId::new("des_te", scenario.name.clone()), &(), |b, _| {
            b.iter(|| {
                desensitization_config(
                    &scenario.paths,
                    &history,
                    &DesensitizationSettings::default(),
                    SolverEngine::Auto,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, solver_time);
criterion_main!(benches);
