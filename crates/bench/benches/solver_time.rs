//! Table 2 — per-snapshot TE calculation time.
//!
//! Benchmarks the time to compute one TE configuration for a new demand
//! matrix with (a) a trained FIGRET model (one forward pass), (b) the plain
//! min-MLU LP ("LP" column), (c) the per-snapshot warm re-solve of the
//! min-MLU LP through the warm-started template (`lp_min_mlu_warm` — what a
//! snapshot *series* actually pays after the first solve) and (d)
//! desensitization-based TE ("Des TE" column), on GEANT and on the (reduced)
//! ToR-level DB fabric.  The speedup of FIGRET over the LP-based schemes is
//! the quantity Table 2 reports; the warm/cold LP ratio is the amortization
//! the template path buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret::{FigretConfig, FigretModel};
use figret_bench::bench_setup;
use figret_solvers::{
    desensitization_config, omniscient_config, DesensitizationSettings, MluTemplate, SolverEngine,
};
use figret_traffic::{per_pair_variance_range, WindowDataset};

fn solver_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_solver_time");
    group.sample_size(10);

    for topology in [figret_topology::Topology::Geant, figret_topology::Topology::MetaDbTor] {
        let scenario = bench_setup(topology, 120);
        let window = 8;
        let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
        let dataset =
            WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
        let mut model = FigretModel::new(
            &scenario.paths,
            &variances,
            FigretConfig { history_window: window, epochs: 2, ..FigretConfig::fast_test() },
        );
        model.train(&dataset);
        let t = scenario.trace.len() - 1;
        let history: Vec<_> = (t - window..t).map(|h| scenario.trace.matrix(h).clone()).collect();
        let demand = scenario.trace.matrix(t).clone();

        group.bench_with_input(
            BenchmarkId::new("figret_forward", scenario.name.clone()),
            &(),
            |b, _| b.iter(|| model.predict(&scenario.paths, &history)),
        );
        group.bench_with_input(
            BenchmarkId::new("lp_min_mlu", scenario.name.clone()),
            &(),
            |b, _| {
                b.iter(|| omniscient_config(&scenario.paths, &demand, SolverEngine::Auto).unwrap())
            },
        );
        // Per-snapshot warm re-solve: the template holds the basis of the
        // previous snapshot's optimum; each iteration swaps in the next
        // demand matrix of the trace (cycling over the last few snapshots so
        // consecutive solves see realistic drift) and re-solves warm.
        let warm_demands: Vec<Vec<f64>> =
            (t - 4..=t).map(|h| scenario.trace.matrix(h).flatten_pairs()).collect();
        let mut template = MluTemplate::new(&scenario.paths);
        template.solve(&scenario.paths, &warm_demands[0]).unwrap(); // cold seed solve
        let mut cursor = 0usize;
        group.bench_with_input(
            BenchmarkId::new("lp_min_mlu_warm", scenario.name.clone()),
            &(),
            |b, _| {
                b.iter(|| {
                    cursor = (cursor + 1) % warm_demands.len();
                    template.solve(&scenario.paths, &warm_demands[cursor]).unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("des_te", scenario.name.clone()), &(), |b, _| {
            b.iter(|| {
                desensitization_config(
                    &scenario.paths,
                    &history,
                    &DesensitizationSettings::default(),
                    SolverEngine::Auto,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, solver_time);
criterion_main!(benches);
