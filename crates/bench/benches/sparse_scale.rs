//! sparse_scale — the dense→sparse cliff of the demand–path core (ISSUE 7).
//!
//! Measures the three hot operations of the serving pipeline on random-regular
//! (Jellyfish-style) ToR fabrics at 128/512/1024/2048 ToRs:
//!
//! * `construct_*` — generating a short ToR-level demand trace, columnar over
//!   the sampled communication pattern (`construct_sparse`, `O(nnz · T)`)
//!   versus all pairs (`construct_dense`, `O(N² · T)`);
//! * `mlu_*` — one max-link-utilization evaluation through the scratch-buffer
//!   evaluator on the restricted path set (`mlu_sparse`), versus the dense
//!   all-pairs path set and matrix adapter (`mlu_dense`, 128 ToRs only);
//! * `decision_*` — one full LP controller tick (forecast → candidate →
//!   deploy → ingest) through `step_sparse` on pair columns, versus the dense
//!   `step` over an all-pairs path set (128 ToRs only).
//!
//! The dense full pipeline stops at 128 ToRs: Yen's enumeration over all
//! `N·(N-1)` pairs is already ~16k pairs there — the same order as the
//! *sparse* universe at 2048 ToRs — which is exactly the cliff this
//! benchmark records.  Recorded to `BENCH_pr7.json` via `CRITERION_JSON`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use figret_serve::{PredictorKind, ReconfigPolicy, ServeController};
use figret_te::{max_link_utilization, max_link_utilization_pairs_scratch, PathSet, TeConfig};
use figret_topology::FabricSpec;
use figret_traffic::datacenter::{tor_trace, tor_trace_sparse, TorTrafficConfig};
use figret_traffic::{ActivePairs, SparseTrace, TrafficTrace};

const SIZES: [usize; 4] = [128, 512, 1024, 2048];
const PER_SOURCE: usize = 8;
const SNAPSHOTS: usize = 6;
const WINDOW: usize = 4;

fn tor_config(seed: u64) -> TorTrafficConfig {
    TorTrafficConfig { num_snapshots: SNAPSHOTS, seed, ..Default::default() }
}

struct FabricCase {
    graph: figret_topology::Graph,
    paths: PathSet,
    trace: SparseTrace,
}

fn fabric_case(tors: usize) -> FabricCase {
    let fabric = FabricSpec::jellyfish(tors).build();
    let active = Arc::new(ActivePairs::sample_among(
        fabric.graph.num_nodes(),
        fabric.num_tors,
        PER_SOURCE,
        7 ^ 0xfab,
    ));
    let paths = PathSet::k_shortest_for_pairs(&fabric.graph, &active, 3);
    let trace = tor_trace_sparse(&fabric.graph, &active, &tor_config(7));
    FabricCase { graph: fabric.graph, paths, trace }
}

fn warmed_sparse_controller(case: &FabricCase) -> ServeController {
    let mut controller = ServeController::lp(
        &case.paths,
        WINDOW,
        PredictorKind::LastValue.build(),
        ReconfigPolicy::always_update(),
    );
    for t in 0..WINDOW {
        controller.observe_sparse(case.trace.snapshot(t));
    }
    controller
}

/// Trace construction: columnar over the sampled pairs vs. all `N²` pairs.
fn construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_scale");
    group.sample_size(10);
    for tors in SIZES {
        let fabric = FabricSpec::jellyfish(tors).build();
        let active = Arc::new(ActivePairs::sample_among(
            fabric.graph.num_nodes(),
            fabric.num_tors,
            PER_SOURCE,
            7 ^ 0xfab,
        ));
        let label = format!("{tors} ToRs");
        group.bench_with_input(BenchmarkId::new("construct_sparse", &label), &(), |b, _| {
            b.iter(|| tor_trace_sparse(&fabric.graph, &active, &tor_config(7)))
        });
        group.bench_with_input(BenchmarkId::new("construct_dense", &label), &(), |b, _| {
            b.iter(|| tor_trace(&fabric.graph, &tor_config(7)))
        });
    }
    group.finish();
}

/// One MLU evaluation on the restricted path set (sparse) and, at 128 ToRs,
/// on the dense all-pairs path set through the matrix adapter.
fn mlu_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_scale");
    group.sample_size(20);
    for tors in SIZES {
        let case = fabric_case(tors);
        let config = TeConfig::uniform(&case.paths);
        let mut scratch = Vec::new();
        let mut cursor = 0usize;
        let label = format!("{tors} ToRs");
        group.bench_with_input(BenchmarkId::new("mlu_sparse", &label), &(), |b, _| {
            b.iter(|| {
                cursor = (cursor + 1) % case.trace.len();
                max_link_utilization_pairs_scratch(
                    &case.paths,
                    &config,
                    case.trace.snapshot(cursor).values(),
                    &mut scratch,
                )
            })
        });
        if tors == SIZES[0] {
            let paths_dense = PathSet::k_shortest(&case.graph, 3);
            let config_dense = TeConfig::uniform(&paths_dense);
            let trace_dense: TrafficTrace = case.trace.to_trace();
            let mut cursor = 0usize;
            group.bench_with_input(BenchmarkId::new("mlu_dense", &label), &(), |b, _| {
                b.iter(|| {
                    cursor = (cursor + 1) % trace_dense.len();
                    max_link_utilization(&paths_dense, &config_dense, trace_dense.matrix(cursor))
                })
            });
        }
    }
    group.finish();
}

/// One full LP controller decision on pair columns and, at 128 ToRs, on the
/// dense all-pairs path set with matrix ingestion.
///
/// The LP tick is benchmarked up to 1024 ToRs: at 2048 the sparse universe
/// is ~16k pairs — the same program size as the *dense* 128-ToR case, whose
/// warm re-solve is already seconds-scale on one core (and single degenerate
/// solves can crawl for minutes).  Construction and MLU evaluation, the
/// operations that stay on the per-tick hot path regardless of engine,
/// are recorded through 2048.
fn controller_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_scale");
    group.sample_size(5);
    for tors in [128, 512, 1024] {
        let case = fabric_case(tors);
        let mut controller = warmed_sparse_controller(&case);
        let mut cursor = WINDOW - 1;
        let label = format!("{tors} ToRs");
        group.bench_with_input(BenchmarkId::new("decision_sparse", &label), &(), |b, _| {
            b.iter(|| {
                cursor = (cursor + 1) % case.trace.len();
                controller.step_sparse(case.trace.snapshot(cursor))
            })
        });
        if tors == SIZES[0] {
            let paths_dense = PathSet::k_shortest(&case.graph, 3);
            let trace_dense: TrafficTrace = case.trace.to_trace();
            let mut dense = ServeController::lp(
                &paths_dense,
                WINDOW,
                PredictorKind::LastValue.build(),
                ReconfigPolicy::always_update(),
            );
            for t in 0..WINDOW {
                dense.observe(trace_dense.matrix(t));
            }
            let mut cursor = WINDOW - 1;
            group.bench_with_input(BenchmarkId::new("decision_dense", &label), &(), |b, _| {
                b.iter(|| {
                    cursor = (cursor + 1) % trace_dense.len();
                    dense.step(trace_dense.matrix(cursor))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, construct, mlu_eval, controller_decision);
criterion_main!(benches);
