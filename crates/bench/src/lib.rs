//! # figret-bench
//!
//! Shared setup helpers for the Criterion benchmarks that regenerate the
//! timing results of Table 2 (see `benches/`).

#![warn(missing_docs)]

pub mod fleet;

pub use figret_eval::{Scenario, ScenarioOptions};
pub use figret_topology::Topology;

/// Builds the reduced-scale scenario used by the benchmarks for a topology,
/// with a short trace so setup stays cheap.
pub fn bench_setup(topology: Topology, snapshots: usize) -> Scenario {
    Scenario::build(topology, &ScenarioOptions { num_snapshots: snapshots, ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_builds_a_scenario() {
        let s = bench_setup(Topology::MetaDbPod, 20);
        assert_eq!(s.trace.len(), 20);
        assert!(s.paths.num_paths() > 0);
    }
}
