//! Shared setup for the sharded-fleet benchmarks (`shard_scale`,
//! `fleet_inference`): random-regular ToR fabrics, sampled sparse pair
//! universes, and warmed [`FleetController`]s in both the LP and the
//! learned-inference serving modes (DESIGN.md §8).

use std::sync::Arc;

use figret::{FigretConfig, FigretModel};
use figret_serve::{FleetController, PredictorKind, ReconfigPolicy, ServeController, UpdateBudget};
use figret_te::PathSet;
use figret_topology::FabricSpec;
use figret_traffic::datacenter::{tor_trace_sparse, TorTrafficConfig};
use figret_traffic::{ActivePairs, ShardPlan, SparseTrace};

/// Snapshots per benchmark trace (warmup + a few ticks to cycle over).
pub const SNAPSHOTS: usize = 10;
/// Sliding-window length of the LP fleets.
pub const WINDOW: usize = 2;
/// Sampled destinations per source ToR.
pub const PER_SOURCE: usize = 8;

/// A fabric, its sampled pair universe, path set, and traffic trace —
/// everything a fleet benchmark needs to build controllers.
pub struct FleetCase {
    /// k-shortest paths over the sampled universe.
    pub paths: PathSet,
    /// The benchmark traffic trace (sparse columns, slot order).
    pub trace: SparseTrace,
    /// The sampled pair universe.
    pub active: Arc<ActivePairs>,
    /// ToR count of the fabric (source-block partitioning granularity).
    pub num_tors: usize,
}

/// Builds the benchmark case for a `tors`-ToR jellyfish fabric.  `steady`
/// picks the no-churn, hair-width-burst traffic config (demand moves ~0.1%
/// per snapshot, so warm LP bases stay near-optimal); otherwise the default
/// on/off + burst workload.
pub fn fleet_case(tors: usize, steady: bool) -> FleetCase {
    let fabric = FabricSpec::jellyfish(tors).build();
    let active = Arc::new(ActivePairs::sample_among(
        fabric.graph.num_nodes(),
        fabric.num_tors,
        PER_SOURCE,
        7 ^ 0xfab,
    ));
    let paths = PathSet::k_shortest_for_pairs(&fabric.graph, &active, 3);
    let config = if steady {
        TorTrafficConfig {
            num_snapshots: SNAPSHOTS,
            seed: 7,
            on_probability: 0.0,
            off_probability: 0.0,
            burst_magnitude: (0.999, 1.001),
            ..Default::default()
        }
    } else {
        TorTrafficConfig { num_snapshots: SNAPSHOTS, seed: 7, ..Default::default() }
    };
    let trace = tor_trace_sparse(&fabric.graph, &active, &config);
    FleetCase { paths, trace, active, num_tors: fabric.num_tors }
}

/// The benchmark reconfiguration policy: a real joint budget, so the
/// admission layer runs its full grant path every tick.
pub fn fleet_policy() -> ReconfigPolicy {
    ReconfigPolicy {
        hysteresis: 0.01,
        budget: Some(UpdateBudget::per_window(4, 8)),
        ..ReconfigPolicy::always_update()
    }
}

/// Builds an LP fleet over `shards` source blocks and pays warmup + the
/// cold first solve outside the timed region, so samples measure the
/// steady warm-tick cost.
pub fn warmed_lp_fleet(case: &FleetCase, shards: usize) -> FleetController {
    let plan = ShardPlan::source_blocks(&case.active, case.num_tors, shards);
    let mut fleet =
        FleetController::lp(&plan, &case.paths, WINDOW, PredictorKind::LastValue, &fleet_policy());
    for t in 0..WINDOW {
        fleet.observe_sparse(case.trace.snapshot(t));
    }
    fleet.step_sparse(case.trace.snapshot(WINDOW));
    fleet
}

/// Builds a learned-inference fleet over `shards` source blocks: each shard
/// compiles its model into the f32 `InferencePlan` and serves it with the
/// LP audit disabled, so ticks never touch the solver.  Weights stay at
/// initialisation — inference cost is weight-independent, and
/// restricted-universe training is an open ROADMAP item — so this measures
/// serving throughput, not TE quality.  Warmup (the model's history window)
/// and the first decision are paid here, outside the timed region.
pub fn warmed_learned_fleet(
    case: &FleetCase,
    shards: usize,
    config: &FigretConfig,
) -> FleetController {
    let plan = ShardPlan::source_blocks(&case.active, case.num_tors, shards);
    let pol = fleet_policy();
    let controllers = plan
        .shards()
        .iter()
        .map(|shard| {
            let (restricted, _) = case.paths.restrict_to(shard.active());
            let model =
                FigretModel::new(&restricted, &vec![0.0; restricted.num_pairs()], config.clone());
            let mut c = ServeController::learned(
                &restricted,
                model,
                PredictorKind::LastValue.build(),
                ReconfigPolicy { budget: None, ..pol.clone() },
            );
            c.enable_inference_plan();
            c.bind_universe(shard.active());
            c
        })
        .collect();
    let mut fleet = FleetController::from_controllers(&plan, controllers, &pol);
    let window = config.history_window;
    for t in 0..window {
        fleet.observe_sparse(case.trace.snapshot(t));
    }
    fleet.step_sparse(case.trace.snapshot(window));
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_and_learned_fleets_build_and_tick() {
        let case = fleet_case(64, true);
        let mut lp = warmed_lp_fleet(&case, 4);
        let out = lp.step_sparse(case.trace.snapshot(WINDOW + 1));
        assert!(out.global_mlu > 0.0);
        assert_eq!(lp.num_shards(), 4);

        let config = FigretConfig::fast_test();
        let mut learned = warmed_learned_fleet(&case, 4, &config);
        let window = config.history_window;
        let out = learned.step_sparse(case.trace.snapshot(window + 1));
        assert!(out.global_mlu > 0.0);
        assert_eq!(out.decision_seconds.len(), 4);
    }
}
