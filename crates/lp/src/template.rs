//! Warm-started re-solving of structurally identical programs.
//!
//! Snapshot series (omniscient TE, Des TE, prediction TE over a trace) solve
//! the *same* linear program over and over with only demand-dependent
//! coefficients and right-hand sides changing.  [`LpTemplate`] exploits that:
//! the standard form — slack/artificial layout, CSR pattern, column view — is
//! built **once**, per-solve updates rewrite values in place through
//! [`CoeffHandle`]s, and every solve after the first is seeded from the
//! previous optimum's [`crate::revised::Basis`].  A series of `T` snapshots
//! thus costs one cold two-phase solve plus `T − 1` warm re-solves, each of
//! which typically needs a handful of pivots (the same amortization idea as
//! semi-oblivious TE systems that re-optimize over slowly drifting matrices).
//!
//! Invariants: the variable set, objective, constraint pattern and every
//! constraint's *relation* are frozen at construction; only coefficient values
//! and right-hand sides may change, and a right-hand side must keep the sign
//! it had at construction (the sign decides the slack/artificial layout).
//! Warm starting never changes results — an unusable basis silently falls
//! back to a cold solve (`stats.warm_started` reports which path ran).
//!
//! Beyond the previous optimum, the template keeps a small **basis pool**: the
//! last [`BASIS_POOL`] optimal bases, each keyed by the mutable program data
//! (coefficient values and right-hand sides) it was optimal for.  Each solve
//! seeds from the pool entry closest (L1) to the current data.  Traffic is not
//! a random walk — matrices recur (diurnal cycles, periodic batch jobs, A/B
//! flips between a few regimes) — and a seed from a *similar* snapshot is
//! dramatically cheaper than one from merely the *latest* snapshot: a
//! revisited regime re-solves in zero pivots where the drifted previous basis
//! would be rejected and trigger a full cold solve.

use crate::problem::LinearProgram;
use crate::revised::{solve_on_form, Basis, StandardForm};
use crate::solution::{LpError, Solution};

/// Number of recent optima kept for seed selection (see the module docs).
/// Sized to cover a handful of traffic regimes; the per-solve selection scan
/// costs `BASIS_POOL × nnz` flops, microseconds against a millisecond solve.
const BASIS_POOL: usize = 8;

/// A stable handle to one constraint coefficient of a template, resolved once
/// via [`LpTemplate::coefficient`] and then valid for the template's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoeffHandle {
    row: usize,
    /// Index into the constraint's sparse coefficient list.
    entry: usize,
    /// Position in the CSR value array of the standard form.
    csr_pos: usize,
}

/// A linear program whose structure is fixed but whose demand-dependent
/// values are rewritten between solves, with basis warm starting across
/// solves.  See the module docs for the invariants.
#[derive(Debug)]
pub struct LpTemplate {
    lp: LinearProgram,
    form: StandardForm,
    basis: Option<Basis>,
    /// Recent optima, oldest first, keyed by the mutable program data
    /// (standard-form coefficient values ++ RHS) each was optimal for.
    pool: Vec<(Vec<f64>, Basis)>,
}

impl LpTemplate {
    /// Builds the template (standard form + column view) from a fully
    /// assembled program.  Constraints must not contain duplicate variable
    /// entries — the CSR layer would merge them, making coefficient handles
    /// ambiguous.
    pub fn new(lp: LinearProgram) -> LpTemplate {
        assert!(lp.num_vars() > 0, "cannot build a template over an empty program");
        for (r, c) in lp.constraints().iter().enumerate() {
            let mut vars: Vec<usize> = c.coeffs.iter().map(|&(v, _)| v).collect();
            vars.sort_unstable();
            vars.dedup();
            assert!(
                vars.len() == c.coeffs.len(),
                "constraint {r} has duplicate variable entries; merge them before templating"
            );
        }
        let form = StandardForm::build(&lp);
        LpTemplate { lp, form, basis: None, pool: Vec::new() }
    }

    /// The handle of the coefficient of `var` in constraint `row`, if that
    /// entry is stored.  Coefficients that should vary across solves must be
    /// present (possibly as an explicit `0.0`) when the template is built.
    pub fn coefficient(&self, row: usize, var: usize) -> Option<CoeffHandle> {
        let entry = self.lp.constraints()[row].coeffs.iter().position(|&(v, _)| v == var)?;
        let csr_pos = self.form.matrix.position(row, var)?;
        Some(CoeffHandle { row, entry, csr_pos })
    }

    /// Rewrites one constraint coefficient (pattern unchanged).
    pub fn set_coefficient(&mut self, handle: CoeffHandle, value: f64) {
        let sign = if self.form.flipped[handle.row] { -1.0 } else { 1.0 };
        self.lp.set_constraint_coefficient(handle.row, handle.entry, value);
        self.form.matrix.set_value(handle.csr_pos, sign * value);
    }

    /// Rewrites the right-hand side of constraint `row`.  The new value must
    /// have the sign class the row was built with (a sign change would alter
    /// the slack/artificial layout).
    pub fn set_rhs(&mut self, row: usize, value: f64) {
        let flipped = self.form.flipped[row];
        assert!(
            if flipped { value <= 0.0 } else { value >= 0.0 },
            "RHS update {value} changes the sign class of row {row}; rebuild the template instead"
        );
        self.lp.set_constraint_rhs(row, value);
        self.form.rhs[row] = if flipped { -value } else { value };
    }

    /// Solves the template's current program, seeding from the stored basis
    /// closest to the current program data (falling back to the previous
    /// solve's basis, then cold).  On success the final basis joins the pool
    /// and becomes the default seed for the next solve.
    pub fn solve(&mut self) -> Result<Solution, LpError> {
        let signature = self.signature();
        let seed = self.closest_basis(&signature).or(self.basis.as_ref());
        let (solution, basis) = solve_on_form(&self.lp, &self.form, seed)?;
        self.basis = Some(basis.clone());
        self.remember(signature, basis);
        Ok(solution)
    }

    /// The mutable program data as one flat vector: every standard-form
    /// coefficient value followed by the RHS.  Static entries ride along
    /// (they contribute zero to any distance) to keep the key maintenance-free.
    fn signature(&self) -> Vec<f64> {
        let values = self.form.matrix.values();
        let mut sig = Vec::with_capacity(values.len() + self.form.rhs.len());
        sig.extend_from_slice(values);
        sig.extend_from_slice(&self.form.rhs);
        sig
    }

    /// The pool basis whose signature is L1-closest to `signature`, oldest
    /// entry winning ties.
    fn closest_basis(&self, signature: &[f64]) -> Option<&Basis> {
        let mut best: Option<(f64, &Basis)> = None;
        for (key, basis) in &self.pool {
            let dist: f64 = key.iter().zip(signature).map(|(a, b)| (a - b).abs()).sum();
            if best.as_ref().is_none_or(|&(d, _)| dist < d) {
                best = Some((dist, basis));
            }
        }
        best.map(|(_, b)| b)
    }

    /// Inserts an optimum into the pool, replacing any entry with identical
    /// program data (the fresh basis supersedes it) and evicting the oldest
    /// entry beyond [`BASIS_POOL`].
    fn remember(&mut self, signature: Vec<f64>, basis: Basis) {
        if let Some(pos) = self.pool.iter().position(|(key, _)| key == &signature) {
            self.pool.remove(pos);
        }
        self.pool.push((signature, basis));
        if self.pool.len() > BASIS_POOL {
            self.pool.remove(0);
        }
    }

    /// Drops the stored basis and the pool, forcing the next solve to run
    /// cold.
    pub fn clear_basis(&mut self) {
        self.basis = None;
        self.pool.clear();
    }

    /// Whether the next solve will attempt a warm start.
    pub fn has_warm_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// The template's current program (updates applied).
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// The toy min-MLU program with the per-pair demand as a mutable RHS and
    /// the per-path demand coefficients as mutable entries.
    fn toy_template() -> (LpTemplate, CoeffHandle, CoeffHandle) {
        let mut lp = LinearProgram::new(Direction::Minimize);
        let theta = lp.add_variable(1.0);
        let f1 = lp.add_variable(0.0);
        let f2 = lp.add_variable(0.0);
        lp.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Relation::Equal, 3.0);
        lp.add_constraint(vec![(f1, 1.0), (theta, -1.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(f2, 1.0), (theta, -2.0)], Relation::LessEq, 0.0);
        let template = LpTemplate::new(lp);
        let h1 = template.coefficient(1, f1).unwrap();
        let h2 = template.coefficient(2, f2).unwrap();
        (template, h1, h2)
    }

    #[test]
    fn resolves_and_warm_starts_across_rhs_updates() {
        let (mut template, _, _) = toy_template();
        let first = template.solve().unwrap();
        assert_close(first.objective_value, 1.0);
        assert!(!first.stats.warm_started);
        assert!(template.has_warm_basis());
        // Scale the demand: theta scales linearly.
        template.set_rhs(0, 4.5);
        let second = template.solve().unwrap();
        assert_close(second.objective_value, 1.5);
        assert!(second.stats.warm_started, "second solve must reuse the basis");
        assert_eq!(second.stats.phase1_iterations, 0);
    }

    #[test]
    fn coefficient_updates_are_applied_to_both_views() {
        let (mut template, h1, _) = toy_template();
        template.solve().unwrap();
        // Double the utilization weight of f1: as if its demand doubled.
        template.set_coefficient(h1, 2.0);
        let sol = template.solve().unwrap();
        // f1 + f2 = 3, 2 f1 <= theta, f2 <= 2 theta  =>  theta = 1.2 at
        // f1 = 0.6, f2 = 2.4.
        assert_close(sol.objective_value, 1.2);
        assert!(template.lp().is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn clear_basis_forces_a_cold_solve() {
        let (mut template, _, _) = toy_template();
        template.solve().unwrap();
        template.clear_basis();
        assert!(!template.has_warm_basis());
        let sol = template.solve().unwrap();
        assert!(!sol.stats.warm_started);
        assert_close(sol.objective_value, 1.0);
    }

    #[test]
    fn revisited_program_data_reuses_its_own_basis() {
        // Alternate between two demand regimes whose optimal bases differ;
        // the pool must seed a revisit from the regime's *own* basis, making
        // the re-solve pivot-free even though the latest basis is the other
        // regime's.
        let (mut template, h1, _) = toy_template();
        let first = template.solve().unwrap();
        assert_close(first.objective_value, 1.0);
        template.set_coefficient(h1, 4.0); // other regime, different optimum
        let second = template.solve().unwrap();
        assert!(second.objective_value > first.objective_value);
        template.set_coefficient(h1, 1.0); // back to the first regime
        let third = template.solve().unwrap();
        assert_close(third.objective_value, first.objective_value);
        assert!(third.stats.warm_started, "revisit must warm start");
        assert_eq!(third.stats.iterations, 0, "the regime's own basis is already optimal");
    }

    #[test]
    fn missing_coefficient_positions_are_none() {
        let (template, _, _) = toy_template();
        assert!(template.coefficient(1, 2).is_none(), "f2 does not appear in row 1");
    }

    #[test]
    #[should_panic(expected = "sign class")]
    fn rhs_sign_flips_are_rejected() {
        let (mut template, _, _) = toy_template();
        template.set_rhs(0, -1.0);
    }

    #[test]
    fn flipped_rows_update_consistently() {
        // A row stated with negative RHS (x + y >= 4 written as -x - y <= -4)
        // is sign-flipped internally; updates must stay consistent.
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Relation::LessEq, -4.0);
        let mut template = LpTemplate::new(lp);
        let sol = template.solve().unwrap();
        assert_close(sol.objective_value, 4.0);
        template.set_rhs(0, -6.0);
        let sol = template.solve().unwrap();
        assert_close(sol.objective_value, 6.0);
        let h = template.coefficient(0, x).unwrap();
        template.set_coefficient(h, -2.0);
        let sol = template.solve().unwrap();
        // 2x + y >= 6, min x + 2y  =>  x = 3, y = 0.
        assert_close(sol.objective_value, 3.0);
        assert!(template.lp().is_feasible(&sol.values, 1e-6));
    }
}
