//! Warm-started re-solving of structurally identical programs.
//!
//! Snapshot series (omniscient TE, Des TE, prediction TE over a trace) solve
//! the *same* linear program over and over with only demand-dependent
//! coefficients and right-hand sides changing.  [`LpTemplate`] exploits that:
//! the standard form — slack/artificial layout, CSR pattern, column view — is
//! built **once**, per-solve updates rewrite values in place through
//! [`CoeffHandle`]s, and every solve after the first is seeded from the
//! previous optimum's [`crate::revised::Basis`].  A series of `T` snapshots
//! thus costs one cold two-phase solve plus `T − 1` warm re-solves, each of
//! which typically needs a handful of pivots (the same amortization idea as
//! semi-oblivious TE systems that re-optimize over slowly drifting matrices).
//!
//! Invariants: the variable set, objective, constraint pattern and every
//! constraint's *relation* are frozen at construction; only coefficient values
//! and right-hand sides may change, and a right-hand side must keep the sign
//! it had at construction (the sign decides the slack/artificial layout).
//! Warm starting never changes results — an unusable basis silently falls
//! back to a cold solve (`stats.warm_started` reports which path ran).

use crate::problem::LinearProgram;
use crate::revised::{solve_on_form, Basis, StandardForm};
use crate::solution::{LpError, Solution};

/// A stable handle to one constraint coefficient of a template, resolved once
/// via [`LpTemplate::coefficient`] and then valid for the template's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoeffHandle {
    row: usize,
    /// Index into the constraint's sparse coefficient list.
    entry: usize,
    /// Position in the CSR value array of the standard form.
    csr_pos: usize,
}

/// A linear program whose structure is fixed but whose demand-dependent
/// values are rewritten between solves, with basis warm starting across
/// solves.  See the module docs for the invariants.
#[derive(Debug)]
pub struct LpTemplate {
    lp: LinearProgram,
    form: StandardForm,
    basis: Option<Basis>,
}

impl LpTemplate {
    /// Builds the template (standard form + column view) from a fully
    /// assembled program.  Constraints must not contain duplicate variable
    /// entries — the CSR layer would merge them, making coefficient handles
    /// ambiguous.
    pub fn new(lp: LinearProgram) -> LpTemplate {
        assert!(lp.num_vars() > 0, "cannot build a template over an empty program");
        for (r, c) in lp.constraints().iter().enumerate() {
            let mut vars: Vec<usize> = c.coeffs.iter().map(|&(v, _)| v).collect();
            vars.sort_unstable();
            vars.dedup();
            assert!(
                vars.len() == c.coeffs.len(),
                "constraint {r} has duplicate variable entries; merge them before templating"
            );
        }
        let form = StandardForm::build(&lp);
        LpTemplate { lp, form, basis: None }
    }

    /// The handle of the coefficient of `var` in constraint `row`, if that
    /// entry is stored.  Coefficients that should vary across solves must be
    /// present (possibly as an explicit `0.0`) when the template is built.
    pub fn coefficient(&self, row: usize, var: usize) -> Option<CoeffHandle> {
        let entry = self.lp.constraints()[row].coeffs.iter().position(|&(v, _)| v == var)?;
        let csr_pos = self.form.matrix.position(row, var)?;
        Some(CoeffHandle { row, entry, csr_pos })
    }

    /// Rewrites one constraint coefficient (pattern unchanged).
    pub fn set_coefficient(&mut self, handle: CoeffHandle, value: f64) {
        let sign = if self.form.flipped[handle.row] { -1.0 } else { 1.0 };
        self.lp.set_constraint_coefficient(handle.row, handle.entry, value);
        self.form.matrix.set_value(handle.csr_pos, sign * value);
    }

    /// Rewrites the right-hand side of constraint `row`.  The new value must
    /// have the sign class the row was built with (a sign change would alter
    /// the slack/artificial layout).
    pub fn set_rhs(&mut self, row: usize, value: f64) {
        let flipped = self.form.flipped[row];
        assert!(
            if flipped { value <= 0.0 } else { value >= 0.0 },
            "RHS update {value} changes the sign class of row {row}; rebuild the template instead"
        );
        self.lp.set_constraint_rhs(row, value);
        self.form.rhs[row] = if flipped { -value } else { value };
    }

    /// Solves the template's current program, seeding from the previous
    /// solve's optimal basis when one is available.  On success the final
    /// basis is stored as the seed for the next solve.
    pub fn solve(&mut self) -> Result<Solution, LpError> {
        let (solution, basis) = solve_on_form(&self.lp, &self.form, self.basis.as_ref())?;
        self.basis = Some(basis);
        Ok(solution)
    }

    /// Drops the stored basis, forcing the next solve to run cold.
    pub fn clear_basis(&mut self) {
        self.basis = None;
    }

    /// Whether the next solve will attempt a warm start.
    pub fn has_warm_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// The template's current program (updates applied).
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// The toy min-MLU program with the per-pair demand as a mutable RHS and
    /// the per-path demand coefficients as mutable entries.
    fn toy_template() -> (LpTemplate, CoeffHandle, CoeffHandle) {
        let mut lp = LinearProgram::new(Direction::Minimize);
        let theta = lp.add_variable(1.0);
        let f1 = lp.add_variable(0.0);
        let f2 = lp.add_variable(0.0);
        lp.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Relation::Equal, 3.0);
        lp.add_constraint(vec![(f1, 1.0), (theta, -1.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(f2, 1.0), (theta, -2.0)], Relation::LessEq, 0.0);
        let template = LpTemplate::new(lp);
        let h1 = template.coefficient(1, f1).unwrap();
        let h2 = template.coefficient(2, f2).unwrap();
        (template, h1, h2)
    }

    #[test]
    fn resolves_and_warm_starts_across_rhs_updates() {
        let (mut template, _, _) = toy_template();
        let first = template.solve().unwrap();
        assert_close(first.objective_value, 1.0);
        assert!(!first.stats.warm_started);
        assert!(template.has_warm_basis());
        // Scale the demand: theta scales linearly.
        template.set_rhs(0, 4.5);
        let second = template.solve().unwrap();
        assert_close(second.objective_value, 1.5);
        assert!(second.stats.warm_started, "second solve must reuse the basis");
        assert_eq!(second.stats.phase1_iterations, 0);
    }

    #[test]
    fn coefficient_updates_are_applied_to_both_views() {
        let (mut template, h1, _) = toy_template();
        template.solve().unwrap();
        // Double the utilization weight of f1: as if its demand doubled.
        template.set_coefficient(h1, 2.0);
        let sol = template.solve().unwrap();
        // f1 + f2 = 3, 2 f1 <= theta, f2 <= 2 theta  =>  theta = 1.2 at
        // f1 = 0.6, f2 = 2.4.
        assert_close(sol.objective_value, 1.2);
        assert!(template.lp().is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn clear_basis_forces_a_cold_solve() {
        let (mut template, _, _) = toy_template();
        template.solve().unwrap();
        template.clear_basis();
        assert!(!template.has_warm_basis());
        let sol = template.solve().unwrap();
        assert!(!sol.stats.warm_started);
        assert_close(sol.objective_value, 1.0);
    }

    #[test]
    fn missing_coefficient_positions_are_none() {
        let (template, _, _) = toy_template();
        assert!(template.coefficient(1, 2).is_none(), "f2 does not appear in row 1");
    }

    #[test]
    #[should_panic(expected = "sign class")]
    fn rhs_sign_flips_are_rejected() {
        let (mut template, _, _) = toy_template();
        template.set_rhs(0, -1.0);
    }

    #[test]
    fn flipped_rows_update_consistently() {
        // A row stated with negative RHS (x + y >= 4 written as -x - y <= -4)
        // is sign-flipped internally; updates must stay consistent.
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Relation::LessEq, -4.0);
        let mut template = LpTemplate::new(lp);
        let sol = template.solve().unwrap();
        assert_close(sol.objective_value, 4.0);
        template.set_rhs(0, -6.0);
        let sol = template.solve().unwrap();
        assert_close(sol.objective_value, 6.0);
        let h = template.coefficient(0, x).unwrap();
        template.set_coefficient(h, -2.0);
        let sol = template.solve().unwrap();
        // 2x + y >= 6, min x + 2y  =>  x = 3, y = 0.
        assert_close(sol.objective_value, 3.0);
        assert!(template.lp().is_feasible(&sol.values, 1e-6));
    }
}
