//! # figret-lp
//!
//! A self-contained LP toolkit used by the LP-based TE baselines (omniscient,
//! prediction-based, desensitization-based, oblivious and COPE).  The paper
//! uses Gurobi; this crate is the offline substitute documented in
//! DESIGN.md §5.  Two interchangeable solvers share the modelling API:
//!
//! * [`revised`] — the default engine ([`solve`]): a sparse revised simplex
//!   with a CSR constraint matrix, an eta-file (product-form) basis inverse
//!   and warm starting across structurally identical programs;
//! * [`simplex`] — the original dense two-phase tableau, kept as the
//!   independent reference implementation ([`solve_dense`]); property tests
//!   below assert the two agree on randomized programs.
//!
//! Snapshot series re-solve near-identical programs back to back; the
//! [`template::LpTemplate`] API builds the program structure once and re-solves
//! with in-place value updates plus basis warm starts.
//!
//! # Example
//!
//! ```
//! use figret_lp::{Direction, LinearProgram, Relation, solve};
//!
//! // min x + 2y   s.t. x + y >= 4, y <= 1
//! let mut lp = LinearProgram::new(Direction::Minimize);
//! let x = lp.add_variable(1.0);
//! let y = lp.add_variable(2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::GreaterEq, 4.0);
//! lp.add_constraint(vec![(y, 1.0)], Relation::LessEq, 1.0);
//! let solution = solve(&lp).unwrap();
//! assert!((solution.objective_value - 4.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod problem;
pub mod revised;
pub mod simplex;
pub mod solution;
pub mod sparse;
pub mod template;

pub use problem::{Constraint, Direction, LinearProgram, Relation};
pub use revised::{solve, solve_with_basis, Basis};
pub use simplex::solve as solve_dense;
pub use solution::{LpError, Solution, SolveStats};
pub use sparse::{ColumnView, CsrMatrix};
pub use template::{CoeffHandle, LpTemplate};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random bounded-feasible minimization problems: variables have an upper
    /// bound row so the optimum always exists.
    fn arbitrary_bounded_lp() -> impl Strategy<Value = LinearProgram> {
        (1usize..5, 0usize..6).prop_flat_map(|(nvars, nrows)| {
            (
                proptest::collection::vec(-5.0f64..5.0, nvars),
                proptest::collection::vec(
                    (proptest::collection::vec(0.0f64..3.0, nvars), 1.0f64..20.0),
                    nrows,
                ),
            )
                .prop_map(move |(obj, rows)| {
                    let mut lp = LinearProgram::new(Direction::Minimize);
                    for c in &obj {
                        lp.add_variable(*c);
                    }
                    // Upper bound every variable so minimization of negative
                    // costs stays bounded.
                    for v in 0..nvars {
                        lp.add_constraint(vec![(v, 1.0)], Relation::LessEq, 10.0);
                    }
                    for (coeffs, rhs) in rows {
                        let sparse: Vec<(usize, f64)> =
                            coeffs.iter().enumerate().map(|(i, c)| (i, *c)).collect();
                        lp.add_constraint(sparse, Relation::LessEq, rhs);
                    }
                    lp
                })
        })
    }

    /// Randomized *sparse* programs with mixed relations.  Rows touch a random
    /// subset of the variables (sparsity masks), every variable is upper
    /// bounded (no unbounded cases), and `>=`/`=` rows may make an instance
    /// infeasible — both solvers must then agree on that verdict.
    fn arbitrary_sparse_lp() -> impl Strategy<Value = LinearProgram> {
        (2usize..8, 1usize..8).prop_flat_map(|(nvars, nrows)| {
            (
                proptest::collection::vec(-3.0f64..5.0, nvars),
                proptest::collection::vec(
                    (
                        proptest::collection::vec(0.0f64..1.0, nvars), // sparsity mask
                        proptest::collection::vec(0.2f64..3.0, nvars), // coefficients
                        0.0f64..3.0,                                   // relation selector
                        0.0f64..4.0,                                   // rhs scale
                    ),
                    nrows,
                ),
            )
                .prop_map(move |(obj, rows)| {
                    let mut lp = LinearProgram::new(Direction::Minimize);
                    for c in &obj {
                        lp.add_variable(*c);
                    }
                    for v in 0..nvars {
                        lp.add_constraint(vec![(v, 1.0)], Relation::LessEq, 10.0);
                    }
                    for (mask, coeffs, rel, rhs) in rows {
                        let sparse: Vec<(usize, f64)> = mask
                            .iter()
                            .zip(&coeffs)
                            .enumerate()
                            .filter(|(_, (m, _))| **m < 0.4) // ~40% fill
                            .map(|(i, (_, c))| (i, *c))
                            .collect();
                        if sparse.is_empty() {
                            continue;
                        }
                        let relation = if rel < 1.0 {
                            Relation::LessEq
                        } else if rel < 2.0 {
                            Relation::GreaterEq
                        } else {
                            Relation::Equal
                        };
                        lp.add_constraint(sparse, relation, rhs);
                    }
                    lp
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn solutions_are_feasible_and_not_worse_than_origin(lp in arbitrary_bounded_lp()) {
            let sol = solve(&lp).expect("bounded feasible LP must solve");
            prop_assert!(lp.is_feasible(&sol.values, 1e-6));
            // The origin is always feasible here (all rows are <= with rhs > 0),
            // so the optimum must not exceed the origin's objective (0).
            prop_assert!(sol.objective_value <= 1e-6);
            // Objective value must match the returned point.
            prop_assert!((lp.objective_value(&sol.values) - sol.objective_value).abs() < 1e-9);
            // Pivot accounting must add up.
            prop_assert!(sol.stats.iterations
                == sol.stats.phase1_iterations + sol.stats.phase2_iterations);
        }

        /// Tentpole equivalence: the sparse revised simplex and the dense
        /// tableau must agree — same feasibility verdict, and when solvable,
        /// objectives within 1e-6 with both points feasible.
        #[test]
        fn sparse_revised_agrees_with_dense_tableau(lp in arbitrary_sparse_lp()) {
            let sparse = revised::solve(&lp);
            let dense = simplex::solve(&lp);
            match (&sparse, &dense) {
                (Ok(s), Ok(d)) => {
                    prop_assert!(lp.is_feasible(&s.values, 1e-6),
                        "revised solution infeasible");
                    prop_assert!(lp.is_feasible(&d.values, 1e-6),
                        "dense solution infeasible");
                    prop_assert!((s.objective_value - d.objective_value).abs() < 1e-6,
                        "objectives diverge: revised {} vs dense {}",
                        s.objective_value, d.objective_value);
                }
                (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                (a, b) => prop_assert!(false, "verdicts diverge: revised {a:?} vs dense {b:?}"),
            }
        }

        /// Partial pricing must be invisible in the results: the default
        /// solver (candidate-list pricing) and the full-sweep reference must
        /// return the same verdict on cold solves and, when solvable, the
        /// same optimum.
        #[test]
        fn partial_pricing_agrees_with_full_pricing_cold(lp in arbitrary_sparse_lp()) {
            let partial = solve_with_basis(&lp, None);
            let full = revised::solve_with_basis_full_pricing(&lp, None);
            match (&partial, &full) {
                (Ok((p, _)), Ok((f, _))) => {
                    prop_assert!(lp.is_feasible(&p.values, 1e-6),
                        "partial-pricing solution infeasible");
                    prop_assert!(lp.is_feasible(&f.values, 1e-6),
                        "full-pricing solution infeasible");
                    prop_assert!((p.objective_value - f.objective_value).abs() < 1e-6,
                        "objectives diverge: partial {} vs full {}",
                        p.objective_value, f.objective_value);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "error verdicts diverge"),
                (a, b) => prop_assert!(false, "verdicts diverge: partial ok={} vs full ok={}",
                    a.is_ok(), b.is_ok()),
            }
        }

        /// Same agreement on the bounded corpus, where a solution always
        /// exists, plus on warm re-solves: both pricing strategies chain
        /// their own basis through a perturbed-RHS sequence and must land on
        /// the same optimum at every step.
        #[test]
        fn partial_pricing_agrees_with_full_pricing_warm(
            lp in arbitrary_bounded_lp(),
            nvars in 2usize..5,
            scales in proptest::collection::vec(0.2f64..4.0, 1usize..6),
        ) {
            // Cold, bounded corpus.
            let (p, _) = solve_with_basis(&lp, None).expect("bounded partial solve");
            let (f, _) = revised::solve_with_basis_full_pricing(&lp, None)
                .expect("bounded full solve");
            prop_assert!((p.objective_value - f.objective_value).abs() < 1e-6,
                "bounded objectives diverge: partial {} vs full {}",
                p.objective_value, f.objective_value);

            // Warm: min Σ (1 + i) x_i  s.t.  Σ x_i = s (perturbed), x_i <= 3 s.
            let build = |s: f64| {
                let mut lp = LinearProgram::new(Direction::Minimize);
                for i in 0..nvars {
                    lp.add_variable(1.0 + i as f64);
                }
                let all: Vec<(usize, f64)> = (0..nvars).map(|i| (i, 1.0)).collect();
                lp.add_constraint(all, Relation::Equal, s);
                for v in 0..nvars {
                    lp.add_constraint(vec![(v, 1.0)], Relation::LessEq, 3.0 * s);
                }
                lp
            };
            let mut partial_basis: Option<Basis> = None;
            let mut full_basis: Option<Basis> = None;
            for (step, s) in scales.iter().enumerate() {
                let lp = build(*s);
                let (p, pb) = solve_with_basis(&lp, partial_basis.as_ref())
                    .expect("partial warm solve");
                let (f, fb) = revised::solve_with_basis_full_pricing(&lp, full_basis.as_ref())
                    .expect("full warm solve");
                prop_assert!((p.objective_value - f.objective_value).abs() < 1e-6,
                    "step {step}: partial {} vs full {}",
                    p.objective_value, f.objective_value);
                prop_assert!(lp.is_feasible(&p.values, 1e-6));
                partial_basis = Some(pb);
                full_basis = Some(fb);
            }
        }

        /// Warm-start-equals-cold-start: over a sequence of perturbed RHS
        /// values, a template (warm) solve and a from-scratch (cold) solve of
        /// the same program must produce the same optimum.
        #[test]
        fn warm_start_equals_cold_start_over_rhs_sequences(
            nvars in 2usize..5,
            scales in proptest::collection::vec(0.2f64..4.0, 1usize..6),
        ) {
            // min Σ (1 + i) x_i  s.t.  Σ x_i = s (perturbed), x_i <= 3 s.
            let mut lp = LinearProgram::new(Direction::Minimize);
            for i in 0..nvars {
                lp.add_variable(1.0 + i as f64);
            }
            let all: Vec<(usize, f64)> = (0..nvars).map(|i| (i, 1.0)).collect();
            lp.add_constraint(all, Relation::Equal, 1.0);
            for v in 0..nvars {
                lp.add_constraint(vec![(v, 1.0)], Relation::LessEq, 3.0);
            }
            let mut template = LpTemplate::new(lp.clone());
            for (step, s) in scales.iter().enumerate() {
                template.set_rhs(0, *s);
                for v in 0..nvars {
                    template.set_rhs(1 + v, 3.0 * s);
                }
                let warm = template.solve().expect("template solve must succeed");
                let cold = revised::solve(template.lp()).expect("cold solve must succeed");
                prop_assert!((warm.objective_value - cold.objective_value).abs() < 1e-6,
                    "step {step}: warm {} vs cold {}", warm.objective_value, cold.objective_value);
                prop_assert!(template.lp().is_feasible(&warm.values, 1e-6));
            }
        }
    }
}
