//! # figret-lp
//!
//! A self-contained dense two-phase simplex solver used by the LP-based TE
//! baselines (omniscient, prediction-based, desensitization-based, oblivious
//! and COPE).  The paper uses Gurobi; this crate is the offline substitute
//! documented in DESIGN.md §5.
//!
//! # Example
//!
//! ```
//! use figret_lp::{Direction, LinearProgram, Relation, solve};
//!
//! // min x + 2y   s.t. x + y >= 4, y <= 1
//! let mut lp = LinearProgram::new(Direction::Minimize);
//! let x = lp.add_variable(1.0);
//! let y = lp.add_variable(2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::GreaterEq, 4.0);
//! lp.add_constraint(vec![(y, 1.0)], Relation::LessEq, 1.0);
//! let solution = solve(&lp).unwrap();
//! assert!((solution.objective_value - 4.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod problem;
pub mod simplex;
pub mod solution;

pub use problem::{Constraint, Direction, LinearProgram, Relation};
pub use simplex::solve;
pub use solution::{LpError, Solution, SolveStats};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random bounded-feasible minimization problems: variables have an upper
    /// bound row so the optimum always exists.
    fn arbitrary_bounded_lp() -> impl Strategy<Value = LinearProgram> {
        (1usize..5, 0usize..6).prop_flat_map(|(nvars, nrows)| {
            (
                proptest::collection::vec(-5.0f64..5.0, nvars),
                proptest::collection::vec(
                    (proptest::collection::vec(0.0f64..3.0, nvars), 1.0f64..20.0),
                    nrows,
                ),
            )
                .prop_map(move |(obj, rows)| {
                    let mut lp = LinearProgram::new(Direction::Minimize);
                    for c in &obj {
                        lp.add_variable(*c);
                    }
                    // Upper bound every variable so minimization of negative
                    // costs stays bounded.
                    for v in 0..nvars {
                        lp.add_constraint(vec![(v, 1.0)], Relation::LessEq, 10.0);
                    }
                    for (coeffs, rhs) in rows {
                        let sparse: Vec<(usize, f64)> =
                            coeffs.iter().enumerate().map(|(i, c)| (i, *c)).collect();
                        lp.add_constraint(sparse, Relation::LessEq, rhs);
                    }
                    lp
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn solutions_are_feasible_and_not_worse_than_origin(lp in arbitrary_bounded_lp()) {
            let sol = solve(&lp).expect("bounded feasible LP must solve");
            prop_assert!(lp.is_feasible(&sol.values, 1e-6));
            // The origin is always feasible here (all rows are <= with rhs > 0),
            // so the optimum must not exceed the origin's objective (0).
            prop_assert!(sol.objective_value <= 1e-6);
            // Objective value must match the returned point.
            prop_assert!((lp.objective_value(&sol.values) - sol.objective_value).abs() < 1e-9);
        }
    }
}
