//! Sparse revised simplex with an eta-file basis and warm starts.
//!
//! Where [`crate::simplex`] rewrites a dense `(m+1)×(n+m+1)` tableau on every
//! pivot, this solver keeps the constraint matrix in CSR ([`crate::sparse`])
//! and represents the basis inverse as a product of eta matrices (product-form
//! of the inverse, PFI):
//!
//! * **BTRAN** (`y = Bᵀ⁻¹ c_B`) prices the simplex multipliers, then reduced
//!   costs are computed against the *sparse columns only*;
//! * **FTRAN** (`w = B⁻¹ a_q`) transforms just the entering column;
//! * each pivot appends one eta vector instead of touching every row, and the
//!   factorization is rebuilt from the basis columns ("reinversion") every
//!   [`REFACTOR_INTERVAL`] updates, which also restores numerical accuracy.
//!
//! TE min-MLU programs are extremely sparse (a path touches a handful of
//! links), so per-iteration work drops from `O(m·n)` to roughly
//! `O(nnz + m + |eta file|)`.  Phase-2 pricing is **partial**: a candidate
//! list of the [`CANDIDATE_LIST`] most attractive columns from the last full
//! sweep is re-priced exactly (one sparse dot per column) on every iteration,
//! and the full `d = c − Aᵀy` CSR sweep only runs when the list goes dry or
//! [`MINOR_LIMIT`] minor iterations have passed — warm re-solves that pivot a
//! handful of times touch a handful of columns instead of all of them.
//! Optimality is only ever declared by a clean full sweep, so partial pricing
//! changes the pivot path, never the answer; phase 1 and Bland mode always
//! price fully (see [`MINOR_LIMIT`] and the phase-1 comment).  Reinversion
//! is event-driven (singleton columns pivot without etas, sparse FTRANs only
//! visit the etas they excite), so the work scales with the nonzeros actually
//! involved.
//!
//! Cold solves avoid phase 1 where the shape allows it: a **crash basis**
//! assigns each equality row a structural column exclusive to it (a path's
//! split ratio lives in exactly one conservation row), a **lift step** enters
//! the min-max variable (θ) at the worst-ratio row — which makes the whole
//! crash point feasible in one pivot — and dual-simplex repair mops up
//! whatever is left.  When the crash does not fit (`≥` rows, no exclusive
//! columns) the classic two-phase method runs instead.
//!
//! The module also exposes **warm starts** ([`solve_with_basis`]): a solve can
//! seed from the optimal [`Basis`] of a structurally identical program (same
//! rows, columns and sparsity pattern — only coefficient values and RHS may
//! differ).  A seeded solve skips phase 1: if the old basis went primal
//! infeasible under the new data (the usual case after a coefficient swap), a
//! bounded **dual-simplex repair** — with basis repair for columns that
//! collapsed when a pair's demand dropped to zero — restores `x_B ≥ 0` in a
//! few pivots before primal phase 2 finishes the solve.  Unusable seeds —
//! wrong shape, singular, damage too wide (many on/off pairs toggled), repair
//! gives up — silently fall back to a cold solve, so warm starting never
//! changes the result, only the work.

use std::time::Instant;

use crate::problem::{Direction, LinearProgram, Relation};
use crate::solution::{LpError, Solution, SolveStats};
use crate::sparse::{ColumnView, CsrMatrix};

/// Numeric tolerance used for optimality and feasibility tests.
const EPS: f64 = 1e-9;
/// Non-improving iterations after which pricing switches to Bland's rule.
const STALL_LIMIT: usize = 200;
/// Basis updates between reinversions of the eta file.
const REFACTOR_INTERVAL: usize = 128;
/// A warm basis is accepted if its basic values are no more negative than this.
const WARM_TOL: f64 = 1e-7;
/// Smallest pivot magnitude accepted during reinversion.
const REINVERT_PIVOT_TOL: f64 = 1e-10;
/// Smallest transformed-coefficient magnitude admissible as a dual-repair
/// pivot.  Dual pivots run on a seeded (possibly ill-conditioned) basis, so
/// the bar is far above [`EPS`] — near-zero alphas are factorization noise.
const DUAL_PIVOT_TOL: f64 = 1e-7;
/// Size of the partial-pricing candidate list: each full pricing sweep keeps
/// this many of its most negative nonbasic columns for the exact-repricing
/// iterations that follow.  Large enough that a short warm re-solve rarely
/// needs a second sweep, small enough that repricing stays O(list · nnz/col).
const CANDIDATE_LIST: usize = 32;
/// Minor-iteration cap for partial pricing: at most this many consecutive
/// pivots may price from the candidate list before a full sweep is forced.
/// The list's reduced costs go stale as pivots move the multipliers; on wide
/// programs (des-TE has a column per edge × destination) an unbounded run of
/// minor iterations keeps entering marginal columns and inflates the pivot
/// count far beyond what the sweeps save.
const MINOR_LIMIT: usize = 16;

/// An optimal (or at least feasible) simplex basis, reusable as a warm start
/// for a structurally identical program (see [`solve_with_basis`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column of each constraint row.
    cols: Vec<usize>,
    /// Total column count of the standard form the basis belongs to, used to
    /// reject bases from differently shaped programs.
    total_cols: usize,
}

impl Basis {
    /// Number of constraint rows the basis covers.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }
}

/// One eta matrix: identity except for column `pivot`.
#[derive(Debug, Clone)]
struct Eta {
    pivot: usize,
    /// Diagonal entry `1 / w[pivot]`.
    diag: f64,
    /// Off-diagonal entries `(row, -w[row] / w[pivot])`.
    entries: Vec<(usize, f64)>,
}

/// Product-form factorization of the basis inverse: `B⁻¹ = E_k · … · E_1`.
#[derive(Debug, Clone, Default)]
struct EtaFile {
    etas: Vec<Eta>,
    nnz: usize,
}

impl EtaFile {
    /// `x := B⁻¹ x` (apply etas oldest-first).
    fn ftran(&self, x: &mut [f64]) {
        for eta in &self.etas {
            let t = x[eta.pivot];
            if t != 0.0 {
                x[eta.pivot] = eta.diag * t;
                for &(i, v) in &eta.entries {
                    x[i] += v * t;
                }
            }
        }
    }

    /// `y := B⁻ᵀ y` (apply transposed etas newest-first).
    fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut acc = eta.diag * y[eta.pivot];
            for &(i, v) in &eta.entries {
                acc += v * y[i];
            }
            y[eta.pivot] = acc;
        }
    }

    /// `x := B⁻¹ x` for a *sparse* `x`, event-driven: instead of walking the
    /// whole file (O(#etas) even when almost all are no-ops), only etas whose
    /// pivot row actually carries value are applied, discovered through
    /// `eta_of_row` (row → file index of the eta pivoting there, `usize::MAX`
    /// if none) and drained in file order via a min-heap.  Applying in
    /// ascending file order reproduces the dense FTRAN exactly: an eta whose
    /// pivot first becomes nonzero *after* its turn would not have been
    /// re-applied by the sequential walk either.
    ///
    /// `touched` holds the support of `x` and is extended as values spread.
    /// Indices can repeat when a value cancels to exactly zero and is later
    /// rewritten — consumers must tolerate that (zeroing twice is free;
    /// [`EtaFile::push_from`] zeroes as it drains).
    fn ftran_sparse(&self, x: &mut [f64], touched: &mut Vec<usize>, eta_of_row: &[usize]) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
        for &r in touched.iter() {
            if eta_of_row[r] != usize::MAX {
                heap.push(Reverse(eta_of_row[r]));
            }
        }
        let mut last = usize::MAX;
        while let Some(Reverse(idx)) = heap.pop() {
            if idx == last {
                continue; // duplicate heap entry
            }
            last = idx;
            let eta = &self.etas[idx];
            let t = x[eta.pivot];
            if t == 0.0 {
                continue;
            }
            x[eta.pivot] = eta.diag * t;
            for &(i, v) in &eta.entries {
                if x[i] == 0.0 {
                    touched.push(i);
                    if eta_of_row[i] != usize::MAX && eta_of_row[i] > idx {
                        heap.push(Reverse(eta_of_row[i]));
                    }
                }
                x[i] += v * t;
            }
        }
    }

    /// Appends the eta produced by pivoting the FTRAN'd entering column `w`
    /// on row `pivot`.
    fn push(&mut self, pivot: usize, w: &[f64]) {
        let inv = 1.0 / w[pivot];
        let mut entries = Vec::new();
        for (i, &v) in w.iter().enumerate() {
            if i != pivot && v != 0.0 {
                entries.push((i, -v * inv));
            }
        }
        self.nnz += entries.len() + 1;
        self.etas.push(Eta { pivot, diag: inv, entries });
    }

    /// [`EtaFile::push`] over a sparse support: only `support` indices are
    /// read, and each is zeroed as it is consumed, which both cleans the
    /// scratch vector for the caller and makes duplicate support indices
    /// (see [`EtaFile::ftran_sparse`]) read as zero on second sight.
    fn push_from(&mut self, pivot: usize, w: &mut [f64], support: &[usize]) {
        let inv = 1.0 / w[pivot];
        let mut entries = Vec::new();
        for &i in support {
            let v = w[i];
            w[i] = 0.0;
            if i != pivot && v != 0.0 {
                entries.push((i, -v * inv));
            }
        }
        self.nnz += entries.len() + 1;
        self.etas.push(Eta { pivot, diag: inv, entries });
    }

    /// Appends a pure scaling eta (`x[pivot] *= 1/v`): the elimination step
    /// of a singleton column with entry `v` on an unpivoted row.
    fn push_diagonal(&mut self, pivot: usize, v: f64) {
        self.nnz += 1;
        self.etas.push(Eta { pivot, diag: 1.0 / v, entries: Vec::new() });
    }
}

/// The program in computational standard form: `min cᵀx  s.t.  Ax = b, x ≥ 0`
/// with slack, surplus and artificial columns appended and `b ≥ 0`.
#[derive(Debug)]
pub(crate) struct StandardForm {
    pub(crate) matrix: CsrMatrix,
    view: ColumnView,
    pub(crate) rhs: Vec<f64>,
    /// Number of structural (original) variables.
    num_vars: usize,
    /// First artificial column (artificials occupy `art_start..total_cols`).
    art_start: usize,
    total_cols: usize,
    /// Initial identity basis: the slack or artificial column of each row.
    initial_basis: Vec<usize>,
    /// Whether each row was sign-flipped during normalization (`rhs < 0` in
    /// the source program); template updates must re-apply the flip.
    pub(crate) flipped: Vec<bool>,
    /// Post-normalization relation of each row (crash-basis construction).
    relations: Vec<Relation>,
}

impl StandardForm {
    pub(crate) fn build(lp: &LinearProgram) -> StandardForm {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for c in lp.constraints() {
            let relation = if c.rhs < 0.0 { c.relation.flipped() } else { c.relation };
            match relation {
                Relation::LessEq => num_slack += 1,
                Relation::GreaterEq => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                Relation::Equal => num_artificial += 1,
            }
        }
        let art_start = n + num_slack;
        let total_cols = art_start + num_artificial;

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut initial_basis = Vec::with_capacity(m);
        let mut flipped = Vec::with_capacity(m);
        let mut relations = Vec::with_capacity(m);
        let mut next_slack = n;
        let mut next_art = art_start;
        for c in lp.constraints() {
            let flip = c.rhs < 0.0;
            flipped.push(flip);
            let sign = if flip { -1.0 } else { 1.0 };
            let relation = if flip { c.relation.flipped() } else { c.relation };
            relations.push(relation);
            let mut row: Vec<(usize, f64)> = c.coeffs.iter().map(|&(i, v)| (i, sign * v)).collect();
            match relation {
                Relation::LessEq => {
                    row.push((next_slack, 1.0));
                    initial_basis.push(next_slack);
                    next_slack += 1;
                }
                Relation::GreaterEq => {
                    row.push((next_slack, -1.0));
                    next_slack += 1;
                    row.push((next_art, 1.0));
                    initial_basis.push(next_art);
                    next_art += 1;
                }
                Relation::Equal => {
                    row.push((next_art, 1.0));
                    initial_basis.push(next_art);
                    next_art += 1;
                }
            }
            rows.push(row);
            rhs.push(sign * c.rhs);
        }
        let matrix = CsrMatrix::from_rows(total_cols, &rows);
        let view = matrix.column_view();
        StandardForm {
            matrix,
            view,
            rhs,
            num_vars: n,
            art_start,
            total_cols,
            initial_basis,
            flipped,
            relations,
        }
    }

    pub(crate) fn num_rows(&self) -> usize {
        self.rhs.len()
    }
}

impl Relation {
    fn flipped(self) -> Relation {
        match self {
            Relation::LessEq => Relation::GreaterEq,
            Relation::GreaterEq => Relation::LessEq,
            Relation::Equal => Relation::Equal,
        }
    }
}

/// Why [`Simplex::optimize`] stopped.
enum Outcome {
    Optimal,
    Unbounded,
}

/// Revised simplex state over one standard form.
struct Simplex<'a> {
    form: &'a StandardForm,
    /// Basic column of each row.
    basis: Vec<usize>,
    is_basic: Vec<bool>,
    fact: EtaFile,
    /// Current basic values (`x_B = B⁻¹ b`); kept ≥ 0 during primal
    /// iterations, temporarily negative during dual (warm-repair) pivots.
    xb: Vec<f64>,
    updates_since_refactor: usize,
    /// `fact.nnz` right after the last reinversion: the refactor trigger
    /// watches the *growth* of the eta file (update etas appended since),
    /// not its absolute size — a basis whose factorization is inherently
    /// dense must not refactorize on every pivot.
    nnz_after_refactor: usize,
    stats: SolveStats,
    /// Dense scratch of length `m` (FTRAN results).
    work: Vec<f64>,
    /// Dense scratch of length `m` (BTRAN results: multipliers / unit rows).
    y: Vec<f64>,
    /// Dense scratch of length `total_cols` (reduced costs per pricing sweep).
    reduced: Vec<f64>,
    /// Partial-pricing candidate list: nonbasic columns that looked attractive
    /// at the last full sweep, kept in ascending column order so Dantzig ties
    /// still resolve to the lowest index.  Cleared whenever the cost vector
    /// changes (each [`Simplex::optimize`] call).
    cand: Vec<usize>,
    /// Consecutive minor (candidate-list) iterations since the last full
    /// sweep; [`MINOR_LIMIT`] bounds how stale the list may get.
    minor: usize,
    /// When `false` every iteration runs the full pricing sweep; test hook for
    /// pinning partial pricing against the reference Dantzig loop.
    partial_pricing: bool,
}

impl<'a> Simplex<'a> {
    /// Starts from the all-slack/artificial identity basis (`x_B = b`).
    fn cold(form: &'a StandardForm) -> Simplex<'a> {
        let m = form.num_rows();
        let mut is_basic = vec![false; form.total_cols];
        for &c in &form.initial_basis {
            is_basic[c] = true;
        }
        Simplex {
            form,
            basis: form.initial_basis.clone(),
            is_basic,
            fact: EtaFile::default(),
            xb: form.rhs.clone(),
            updates_since_refactor: 0,
            nnz_after_refactor: 0,
            stats: SolveStats::default(),
            work: vec![0.0; m],
            y: vec![0.0; m],
            reduced: vec![0.0; form.total_cols],
            cand: Vec::new(),
            minor: 0,
            partial_pricing: true,
        }
    }

    /// Starts from a caller-provided basis.  Returns `None` if the basis does
    /// not fit the form, is singular under the current coefficient values, or
    /// leaves an artificial variable basic at a nonzero value — in all of
    /// which cases the caller should solve cold instead.  The returned state
    /// may be primal *infeasible* (negative basic values) when coefficients
    /// changed since the basis was optimal; [`Simplex::dual_repair`] restores
    /// feasibility before primal iterations run.
    fn warm(form: &'a StandardForm, warm: &Basis) -> Option<Simplex<'a>> {
        if warm.cols.len() != form.num_rows() || warm.total_cols != form.total_cols {
            return None;
        }
        let mut simplex = Simplex::cold(form);
        simplex.basis = warm.cols.clone();
        simplex.is_basic = vec![false; form.total_cols];
        for &c in &simplex.basis {
            if c >= form.total_cols || simplex.is_basic[c] {
                return None; // out of range or duplicated column
            }
            simplex.is_basic[c] = true;
        }
        if simplex.refactorize_with(true).is_err() {
            return None;
        }
        // A degenerate optimum can leave artificials basic at value zero;
        // after the value swap they reappear at arbitrary values.  Pivot them
        // out onto structural/slack columns where possible (negative results
        // are repaired by the dual pivots that follow).  Artificials that
        // cannot leave sit on redundant rows and must be at ~zero, or the
        // seed point violates original rows in a way dual pivots on
        // structural/slack columns cannot repair.
        if simplex.basis.iter().any(|&b| b >= form.art_start) {
            simplex.drive_out_artificials();
        }
        for (r, &v) in simplex.xb.iter().enumerate() {
            if simplex.basis[r] >= form.art_start && v.abs() > WARM_TOL {
                return None;
            }
        }
        simplex.stats.warm_started = true;
        Some(simplex)
    }

    /// Builds a **crash basis** that avoids phase 1 on programs shaped like
    /// the TE LPs: every `=` row gets a structural column appearing in *that
    /// equality row only* (a path's split-ratio variable lives in exactly one
    /// conservation row), every `≤` row keeps its slack.  The result is
    /// block-triangular and nonsingular but usually primal infeasible (the
    /// crash routing overloads edges while θ sits at zero) — which
    /// [`Simplex::dual_repair`] then fixes, typically in very few pivots
    /// because one entering θ-column lifts every violated row at once.
    /// Returns `None` when the shape does not fit (`≥` rows, an equality row
    /// without an exclusive column, singular numerics); the caller then runs
    /// the ordinary two-phase solve.
    fn crash(form: &'a StandardForm) -> Option<Simplex<'a>> {
        // Count equality-row appearances of every structural column.
        let mut equal_rows: Vec<usize> = Vec::new();
        let mut appearances = vec![0usize; form.num_vars];
        for (r, relation) in form.relations.iter().enumerate() {
            match relation {
                Relation::GreaterEq => return None,
                Relation::Equal => {
                    equal_rows.push(r);
                    let (cols, vals) = form.matrix.row(r);
                    for (&c, &v) in cols.iter().zip(vals) {
                        if c < form.num_vars && v.abs() > EPS {
                            appearances[c] += 1;
                        }
                    }
                }
                Relation::LessEq => {}
            }
        }
        if equal_rows.is_empty() {
            return None; // the all-slack basis is already artificial-free
        }
        let mut simplex = Simplex::cold(form);
        for &r in &equal_rows {
            let (cols, vals) = form.matrix.row(r);
            let pick = cols.iter().zip(vals).find(|(&c, &v)| {
                c < form.num_vars && v.abs() > EPS && appearances[c] == 1 && !simplex.is_basic[c]
            });
            let (&c, _) = pick?;
            // Swap the row's artificial for the exclusive structural column.
            simplex.is_basic[simplex.basis[r]] = false;
            simplex.is_basic[c] = true;
            simplex.basis[r] = c;
        }
        if simplex.refactorize().is_err() {
            return None;
        }
        simplex.lift_to_feasibility(&appearances);
        Some(simplex)
    }

    /// One-shot feasibility lift for the crash basis.  The crash point is
    /// infeasible exactly where the crash routing overloads `≤` rows, and a
    /// min-max objective variable (θ in min-MLU: a structural column that
    /// appears in no equality row, with negative coefficients in the
    /// overloaded rows) can absorb *all* of those violations at once: enter
    /// it with step `t* = max_{w_i<0} x_i/w_i` — the largest lower bound its
    /// column imposes — provided no positive-coefficient row blocks below
    /// `t*`.  One FTRAN + `O(m)` per candidate; purely an accelerator, the
    /// dual repair that follows handles whatever is left.
    fn lift_to_feasibility(&mut self, equality_appearances: &[usize]) {
        if self.xb.iter().all(|&v| v >= -WARM_TOL) {
            return;
        }
        for q in 0..self.form.num_vars {
            if self.is_basic[q] || equality_appearances[q] != 0 {
                continue;
            }
            if self.form.view.col_nnz(q) == 0 {
                continue;
            }
            self.work.iter_mut().for_each(|v| *v = 0.0);
            for (r, v) in self.form.view.column(&self.form.matrix, q) {
                self.work[r] = v;
            }
            self.fact.ftran(&mut self.work);
            // Smallest step that clears every lower bound the column imposes.
            let mut t = 0.0f64;
            let mut pivot_row: Option<usize> = None;
            for (r, &w) in self.work.iter().enumerate() {
                if w < -DUAL_PIVOT_TOL {
                    let bound = self.xb[r] / w;
                    if bound > t {
                        t = bound;
                        pivot_row = Some(r);
                    }
                }
            }
            let r = match pivot_row {
                Some(r) => r,
                None => continue,
            };
            // Blocked if a positive-coefficient row runs negative, or if a
            // negative row is not actually cleared (w ≈ 0 there).
            let feasible_after = self.xb.iter().zip(self.work.iter()).all(|(&x, &w)| {
                let after = x - t * w;
                after >= -WARM_TOL
            });
            if !feasible_after {
                continue;
            }
            self.pivot_signed(q, r, t);
            self.stats.phase1_iterations += 1;
            for v in self.xb.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            return;
        }
    }

    /// Dual-simplex repair: after the template path swaps coefficient values
    /// (or a crash basis is built), the basis is usually still *dual*
    /// (near-)feasible but primal infeasible — some basic values went
    /// negative.  Classic dual pivots (leaving row = most negative basic
    /// value, entering column = minimum reduced-cost ratio over the row's
    /// negative transformed coefficients) restore `x_B ≥ 0` in a handful of
    /// iterations when the perturbation is small.  Returns `Ok(true)` once
    /// feasible, `Ok(false)` to give up (the caller falls back to a cold
    /// two-phase solve); pivots are counted into `phase1_iterations` since
    /// the repair replaces phase 1.
    ///
    /// With `gated`, heavily damaged seeds bail out instantly: when a large
    /// share of the rows is infeasible the seed is not "the previous optimum
    /// slightly perturbed" but a different program (e.g. many on/off pairs
    /// toggled between snapshots), and grinding dual pivots through it costs
    /// more than the cold solve it would replace.  Both the warm and the
    /// crash path run gated — the crash lift usually clears every violated
    /// row beforehand, so a crash point that is still widely infeasible
    /// (e.g. binding bound rows θ cannot lift) goes straight to two-phase.
    /// `gated = false` is kept for callers that know the damage is shallow.
    fn dual_repair(&mut self, costs: &[f64], gated: bool) -> Result<bool, LpError> {
        let m = self.form.num_rows();
        let max_pivots = m + 100;
        let mut rho = vec![0.0; m];
        let mut candidates: Vec<(usize, f64, f64)> = Vec::new();
        // When pricing and FTRAN disagree (eta-file drift), one reinversion
        // retry is allowed before the attempt is abandoned; any successful
        // pivot re-arms the retry.
        let damage = self.xb.iter().filter(|v| **v < -WARM_TOL).count();
        let max_pivots = if gated {
            if damage > 32.max(m / 16) {
                return Ok(false);
            }
            max_pivots.min(8 * damage + 64)
        } else {
            max_pivots
        };
        let mut fresh_factorization = false;
        let mut pivots = 0usize;
        while pivots < max_pivots {
            // Leaving row: most negative basic value.
            let mut leaving: Option<usize> = None;
            let mut most_negative = -WARM_TOL;
            for (r, &v) in self.xb.iter().enumerate() {
                if v < most_negative {
                    most_negative = v;
                    leaving = Some(r);
                }
            }
            let r = match leaving {
                Some(r) => r,
                None => {
                    // Feasible; flush the remaining sub-tolerance noise.
                    for v in self.xb.iter_mut() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                    return Ok(true);
                }
            };
            // Simplex multipliers for reduced costs: y = Bᵀ⁻¹ c_B.
            for (i, &b) in self.basis.iter().enumerate() {
                self.y[i] = costs[b];
            }
            self.fact.btran(&mut self.y);
            // Row r of B⁻¹A: rho = Bᵀ⁻¹ e_r, then alpha_j = rhoᵀ a_j.
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r] = 1.0;
            self.fact.btran(&mut rho);
            // Entering column: minimum d_j / -alpha_j over alpha_j < 0 among
            // the non-artificial columns (ties go to the lowest index via the
            // strict `<` scan).  Reduced costs are clamped at zero — after a
            // coefficient swap the seed may be slightly dual infeasible, and
            // the primal phase that follows cleans that up.
            // Pass 1: admissible candidates and the row's largest pivot
            // magnitude.  Pass 2: threshold ratio test — only pivots within
            // a fraction of that magnitude are eligible (a tiny alpha under
            // a large infeasibility means a huge step `t = x_B[r]/alpha`
            // that blows the iterate up), then minimum reduced-cost ratio,
            // largest |alpha| among (near-)ties: min-MLU programs are
            // massively dual degenerate (nearly all costs are zero), so most
            // ratios tie at zero and the stable pivot wins.
            candidates.clear();
            let mut max_abs_alpha = 0.0f64;
            for c in 0..self.form.art_start {
                if self.is_basic[c] {
                    continue;
                }
                let alpha = self.form.view.column_dot(&self.form.matrix, c, &rho);
                if alpha < -DUAL_PIVOT_TOL {
                    let d = (costs[c] - self.form.view.column_dot(&self.form.matrix, c, &self.y))
                        .max(0.0);
                    candidates.push((c, alpha, d));
                    max_abs_alpha = max_abs_alpha.max(-alpha);
                }
            }
            let mut entering: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for &(c, alpha, d) in &candidates {
                if -alpha < 0.05 * max_abs_alpha {
                    continue;
                }
                let ratio = d / -alpha;
                let take =
                    ratio < best_ratio - EPS || (ratio < best_ratio + EPS && -alpha > best_alpha);
                if take {
                    best_ratio = ratio.min(best_ratio);
                    best_alpha = -alpha;
                    entering = Some(c);
                }
            }
            let q = match entering {
                Some(q) => q,
                None => {
                    if fresh_factorization {
                        return Ok(false); // row unsatisfiable under this seed
                    }
                    self.refactorize_with(true)?;
                    fresh_factorization = true;
                    continue;
                }
            };
            // FTRAN the entering column and pivot on row r (t > 0 since both
            // x_B[r] and the pivot element are negative).  A pricing/FTRAN
            // disagreement means the eta file has drifted: reinvert and retry.
            self.work.iter_mut().for_each(|v| *v = 0.0);
            for (row, v) in self.form.view.column(&self.form.matrix, q) {
                self.work[row] = v;
            }
            self.fact.ftran(&mut self.work);
            if self.work[r] >= -DUAL_PIVOT_TOL {
                if fresh_factorization {
                    return Ok(false);
                }
                self.refactorize_with(true)?;
                fresh_factorization = true;
                continue;
            }
            let t = self.xb[r] / self.work[r];
            self.pivot_signed(q, r, t);
            self.stats.phase1_iterations += 1;
            pivots += 1;
            fresh_factorization = false;
            if self.should_refactorize() {
                self.refactorize_with(true)?;
            }
        }
        Ok(false)
    }

    /// Rebuilds the eta file from the current basis columns ("reinversion")
    /// and recomputes `x_B` from the RHS.  Unit columns are pivoted first and
    /// the remaining columns are processed sparsest-first to limit fill-in;
    /// pivot rows are chosen by largest magnitude for stability.  The
    /// row-association of the basis is updated to match the pivot assignment.
    fn refactorize(&mut self) -> Result<(), LpError> {
        self.refactorize_with(false)
    }

    /// [`Simplex::refactorize`], optionally with **basis repair**: when a
    /// column proves linearly dependent (no admissible pivot row), drop it
    /// and substitute the slack/artificial unit column of a still-unpivoted
    /// row.  A warm-start seed regularly needs this — e.g. when a pair's
    /// demand drops to zero, the edge-row coefficients of its basic paths
    /// vanish and two of the seed's columns collapse onto each other.  Repair
    /// is only sound for seeds (cold-path reinversions hitting singularity
    /// are genuine numerical breakdown and keep the hard error).
    fn refactorize_with(&mut self, repair: bool) -> Result<(), LpError> {
        let started = Instant::now();
        let result = self.refactorize_with_inner(repair);
        self.stats.factor_seconds += started.elapsed().as_secs_f64();
        result
    }

    fn refactorize_with_inner(&mut self, repair: bool) -> Result<(), LpError> {
        let m = self.form.num_rows();
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&pos| (self.form.view.col_nnz(self.basis[pos]), self.basis[pos]));
        let mut fact = EtaFile::default();
        let mut pivoted = vec![false; m];
        let mut new_basis = vec![0usize; m];
        let mut dropped: Vec<usize> = Vec::new();
        // In repair mode a near-zero pivot is better replaced than kept: it
        // would put a huge multiplier into the eta file, and BTRAN/FTRAN then
        // drift apart on the repaired basis.
        let pivot_tol = if repair { 1e-8 } else { REINVERT_PIVOT_TOL };
        let work = &mut self.work;
        let mut touched: Vec<usize> = Vec::with_capacity(m);
        // File index of the eta pivoting each row (event-driven FTRAN).
        let mut eta_of_row = vec![usize::MAX; m];
        for &pos in &order {
            let col = self.basis[pos];
            // Singleton fast path: a column with one stored entry `v` at an
            // unpivoted row `r` is untouched by FTRAN (no eta can pivot at an
            // unpivoted row), so it pivots `r` directly — and when `v = 1`
            // (every slack/artificial) it needs no eta at all.
            if self.form.view.col_nnz(col) == 1 {
                let (r, v) =
                    self.form.view.column(&self.form.matrix, col).next().expect("one entry");
                if !pivoted[r] && v.abs() > pivot_tol {
                    if v != 1.0 {
                        fact.push_diagonal(r, v);
                        eta_of_row[r] = fact.etas.len() - 1;
                    }
                    pivoted[r] = true;
                    new_basis[r] = col;
                    continue;
                }
            }
            touched.clear();
            for (r, v) in self.form.view.column(&self.form.matrix, col) {
                work[r] = v;
                touched.push(r);
            }
            fact.ftran_sparse(work, &mut touched, &eta_of_row);
            let mut pivot = None;
            let mut best = pivot_tol;
            for &r in &touched {
                let v = work[r];
                if !pivoted[r] && v.abs() > best {
                    best = v.abs();
                    pivot = Some(r);
                }
            }
            match (pivot, repair) {
                (Some(p), _) => {
                    fact.push_from(p, work, &touched);
                    eta_of_row[p] = fact.etas.len() - 1;
                    pivoted[p] = true;
                    new_basis[p] = col;
                }
                (None, true) => dropped.push(col),
                (None, false) => {
                    for &r in &touched {
                        work[r] = 0.0;
                    }
                    return Err(LpError::Numerical); // singular basis
                }
            }
            for &r in &touched {
                work[r] = 0.0;
            }
        }
        // Repair: every dropped column leaves one row unpivoted; its
        // slack/artificial unit column (+1 in exactly that row, and never
        // currently basic — had it been processed above, it would have
        // pivoted that very row) completes the basis.  FTRAN leaves a unit
        // vector of an unpivoted row untouched (no eta pivots there), so the
        // substitution needs no eta at all.
        for &col in &dropped {
            self.is_basic[col] = false;
        }
        if !dropped.is_empty() {
            for r in 0..m {
                if !pivoted[r] {
                    let unit = self.form.initial_basis[r];
                    debug_assert!(!self.is_basic[unit]);
                    self.is_basic[unit] = true;
                    pivoted[r] = true;
                    new_basis[r] = unit;
                }
            }
        }
        self.basis = new_basis;
        self.nnz_after_refactor = fact.nnz;
        self.fact = fact;
        self.updates_since_refactor = 0;
        self.stats.refactorizations += 1;
        // Restore x_B = B⁻¹ b with the fresh factorization.
        self.xb.copy_from_slice(&self.form.rhs);
        self.fact.ftran(&mut self.xb);
        for v in self.xb.iter_mut() {
            if *v < 0.0 && *v > -WARM_TOL {
                *v = 0.0;
            }
        }
        Ok(())
    }

    fn objective(&self, costs: &[f64]) -> f64 {
        self.basis.iter().zip(&self.xb).map(|(&c, &x)| costs[c] * x).sum()
    }

    /// Reinversion trigger: a fixed update interval, or the update etas
    /// appended since the last reinversion outgrowing the base factorization
    /// by `16m` nonzeros (absolute size would loop on dense bases).
    fn should_refactorize(&self) -> bool {
        self.updates_since_refactor >= REFACTOR_INTERVAL
            || self.fact.nnz - self.nnz_after_refactor > 16 * self.form.num_rows() + 1024
    }

    /// Runs the revised simplex with the given costs until optimality.
    /// Columns at `limit..` (the artificials in phase 2) may not enter.
    /// Returns the outcome; pivots are counted into `pivots`.
    fn optimize(
        &mut self,
        costs: &[f64],
        limit: usize,
        max_iterations: usize,
        pivots: &mut usize,
    ) -> Result<Outcome, LpError> {
        let m = self.form.num_rows();
        let mut stall = 0usize;
        let mut last_objective = self.objective(costs);
        // The candidate list holds reduced costs of a *previous* cost vector's
        // sweep; never carry it across phases.
        self.cand.clear();
        self.minor = 0;
        for _ in 0..max_iterations {
            let use_bland = stall >= STALL_LIMIT;
            // Simplex multipliers: y = Bᵀ⁻¹ c_B.
            for (r, &b) in self.basis.iter().enumerate() {
                self.y[r] = costs[b];
            }
            self.fact.btran(&mut self.y);
            // Pricing: re-price the candidate list exactly; fall back to the
            // full sweep when it runs dry (which also repopulates the list) or
            // after [`MINOR_LIMIT`] consecutive minor iterations (bounding
            // list staleness).  Bland mode always prices fully — its
            // anti-cycling guarantee needs the globally first negative column.
            let minor_ok = self.partial_pricing && self.minor < MINOR_LIMIT;
            let entering = if use_bland || !minor_ok {
                self.price_full(costs, limit, use_bland)
            } else {
                match self.price_candidates(costs, limit) {
                    Some(c) => Some(c),
                    None => self.price_full(costs, limit, false),
                }
            };
            let entering = match entering {
                Some(c) => c,
                None => return Ok(Outcome::Optimal),
            };
            // FTRAN: w = B⁻¹ a_entering.
            self.work.iter_mut().for_each(|v| *v = 0.0);
            for (r, v) in self.form.view.column(&self.form.matrix, entering) {
                self.work[r] = v;
            }
            self.fact.ftran(&mut self.work);
            // Ratio test.  In Dantzig mode degenerate ties go to the largest
            // pivot element (numerically stable and less prone to stalling on
            // TE degeneracy); in Bland mode they deterministically pick the
            // lowest basic column index, preserving the anti-cycling
            // guarantee the stall switch relies on.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_pivot = 0.0f64;
            for r in 0..m {
                let a = self.work[r];
                if a > EPS {
                    let ratio = self.xb[r] / a;
                    let take = match leaving {
                        None => true,
                        Some(l) => {
                            ratio < best_ratio - EPS
                                || ((ratio - best_ratio).abs() <= EPS
                                    && if use_bland {
                                        self.basis[r] < self.basis[l]
                                    } else {
                                        a > best_pivot
                                    })
                        }
                    };
                    if take {
                        best_ratio = ratio.min(best_ratio);
                        best_pivot = a;
                        leaving = Some(r);
                    }
                }
            }
            let leaving = match leaving {
                Some(r) => r,
                None => return Ok(Outcome::Unbounded),
            };
            self.pivot(entering, leaving, best_ratio.max(0.0));
            *pivots += 1;
            if self.should_refactorize() {
                self.refactorize()?;
            }
            let objective = self.objective(costs);
            if (objective - last_objective).abs() <= EPS {
                stall += 1;
            } else {
                stall = 0;
                last_objective = objective;
            }
        }
        Err(LpError::IterationLimit)
    }

    /// Full pricing sweep: every reduced cost at once via one sequential CSR
    /// pass (`d = c − Aᵀy`) — far cheaper than per-column indirected dot
    /// products, and it keeps exact Dantzig semantics.  Dantzig takes the
    /// most negative reduced cost, Bland the first; entering ties go to the
    /// lowest column index (scan order).  In Dantzig mode the sweep also
    /// repopulates the candidate list with the [`CANDIDATE_LIST`] most
    /// negative nonbasic columns, re-sorted into ascending column order so
    /// the partial iterations that follow keep the tie rule.
    fn price_full(&mut self, costs: &[f64], limit: usize, use_bland: bool) -> Option<usize> {
        let m = self.form.num_rows();
        self.reduced[..limit].copy_from_slice(&costs[..limit]);
        for r in 0..m {
            let yr = self.y[r];
            if yr != 0.0 {
                let (cols, vals) = self.form.matrix.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    if c < limit {
                        self.reduced[c] -= yr * v;
                    }
                }
            }
        }
        self.cand.clear();
        self.minor = 0;
        let mut entering: Option<usize> = None;
        let mut best = -EPS;
        for c in 0..limit {
            if self.is_basic[c] {
                continue;
            }
            let d = self.reduced[c];
            if d < -EPS {
                if use_bland {
                    return Some(c);
                }
                if d < best {
                    best = d;
                    entering = Some(c);
                }
                self.cand.push(c);
            }
        }
        if self.cand.len() > CANDIDATE_LIST {
            let reduced = &self.reduced;
            self.cand.select_nth_unstable_by(CANDIDATE_LIST - 1, |&a, &b| {
                reduced[a]
                    .partial_cmp(&reduced[b])
                    .expect("reduced costs are finite")
                    .then(a.cmp(&b))
            });
            self.cand.truncate(CANDIDATE_LIST);
            self.cand.sort_unstable();
        }
        entering
    }

    /// Partial pricing: exact reduced costs for the candidate list only (one
    /// sparse column dot against the current multipliers per candidate).
    /// Entries that went basic or non-negative are pruned in place; returns
    /// the most negative survivor (the list is in ascending column order, so
    /// ties resolve to the lowest index exactly like the full sweep), or
    /// `None` when the list runs dry and a full sweep is due.
    fn price_candidates(&mut self, costs: &[f64], limit: usize) -> Option<usize> {
        self.minor += 1;
        let mut entering: Option<usize> = None;
        let mut best = -EPS;
        let mut keep = 0usize;
        for i in 0..self.cand.len() {
            let c = self.cand[i];
            if c >= limit || self.is_basic[c] {
                continue;
            }
            let d = costs[c] - self.form.view.column_dot(&self.form.matrix, c, &self.y);
            if d < -EPS {
                self.cand[keep] = c;
                keep += 1;
                if d < best {
                    best = d;
                    entering = Some(c);
                }
            }
        }
        self.cand.truncate(keep);
        entering
    }

    /// Applies the basis change `entering ↔ basis[leaving]` with step `t`,
    /// using the FTRAN result currently held in `self.work`.  Values are kept
    /// signed — dual pivots legitimately drive entries through negative
    /// territory; primal callers use [`Simplex::pivot`].
    fn pivot_signed(&mut self, entering: usize, leaving: usize, t: f64) {
        if t != 0.0 {
            for (x, &w) in self.xb.iter_mut().zip(self.work.iter()) {
                if w != 0.0 {
                    *x -= t * w;
                }
            }
        }
        self.xb[leaving] = t;
        self.is_basic[self.basis[leaving]] = false;
        self.is_basic[entering] = true;
        self.basis[leaving] = entering;
        self.fact.push(leaving, &self.work);
        self.updates_since_refactor += 1;
    }

    /// Primal pivot: like [`Simplex::pivot_signed`], then clamps the
    /// numerical noise below zero (the ratio test keeps true values ≥ 0).
    fn pivot(&mut self, entering: usize, leaving: usize, t: f64) {
        self.pivot_signed(entering, leaving, t);
        for x in self.xb.iter_mut() {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// Tries to pivot basic artificial variables out of the basis.  Rows
    /// where no structural or slack column has a nonzero transformed
    /// coefficient are redundant and keep their artificial.  After phase 1
    /// the swapped-in values are ~zero; on the warm path they can be any
    /// sign (`pivot_signed`), to be repaired by the dual pivots that follow.
    fn drive_out_artificials(&mut self) {
        let m = self.form.num_rows();
        for r in 0..m {
            if self.basis[r] < self.form.art_start {
                continue;
            }
            // Row r of B⁻¹A over the non-artificial columns: rho = Bᵀ⁻¹ e_r.
            self.y.iter_mut().for_each(|v| *v = 0.0);
            self.y[r] = 1.0;
            self.fact.btran(&mut self.y);
            let replacement = (0..self.form.art_start).find(|&c| {
                !self.is_basic[c]
                    && self.form.view.column_dot(&self.form.matrix, c, &self.y).abs() > 1e-7
            });
            if let Some(c) = replacement {
                self.work.iter_mut().for_each(|v| *v = 0.0);
                for (row, v) in self.form.view.column(&self.form.matrix, c) {
                    self.work[row] = v;
                }
                self.fact.ftran(&mut self.work);
                if self.work[r].abs() > 1e-9 {
                    let t = self.xb[r] / self.work[r];
                    self.pivot_signed(c, r, t);
                }
            }
        }
    }

    fn into_solution(self, lp: &LinearProgram) -> (Solution, Basis) {
        let mut values = vec![0.0; self.form.num_vars];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < self.form.num_vars {
                values[b] = self.xb[r].max(0.0);
            }
        }
        let objective_value = lp.objective_value(&values);
        let mut stats = self.stats;
        stats.iterations = stats.phase1_iterations + stats.phase2_iterations;
        let basis = Basis { cols: self.basis, total_cols: self.form.total_cols };
        (Solution { values, objective_value, stats }, basis)
    }
}

/// Builds the phase-2 cost vector (original objective, negated when
/// maximizing; zeros on slack and artificial columns).
fn phase2_costs(lp: &LinearProgram, form: &StandardForm) -> Vec<f64> {
    let sign = match lp.direction() {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    let mut costs = vec![0.0; form.total_cols];
    for (c, &coeff) in lp.objective().iter().enumerate() {
        costs[c] = sign * coeff;
    }
    costs
}

/// Solves a linear program with the sparse revised simplex (cold start).
pub fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    solve_with_basis(lp, None).map(|(solution, _)| solution)
}

/// Solves a linear program with the sparse revised simplex, optionally warm
/// starting from the basis of a previous solve of a **structurally
/// identical** program (same rows, columns and sparsity pattern; coefficient
/// values and RHS may differ).  Returns the solution together with the final
/// basis, which can seed the next solve in a series.
///
/// An unusable warm basis (wrong shape, singular or primal infeasible under
/// the new data) silently falls back to a cold two-phase solve —
/// `stats.warm_started` reports which path ran.
pub fn solve_with_basis(
    lp: &LinearProgram,
    warm: Option<&Basis>,
) -> Result<(Solution, Basis), LpError> {
    if lp.num_vars() == 0 {
        return Err(LpError::Empty);
    }
    let form = StandardForm::build(lp);
    solve_on_form(lp, &form, warm)
}

/// Test hook: like [`solve_with_basis`] but with partial pricing disabled, so
/// every iteration runs the full Dantzig sweep.  The crate's proptests pin
/// the partial-pricing solver against this reference path: same statuses,
/// objectives within tolerance, warm and cold.
#[cfg(test)]
pub(crate) fn solve_with_basis_full_pricing(
    lp: &LinearProgram,
    warm: Option<&Basis>,
) -> Result<(Solution, Basis), LpError> {
    if lp.num_vars() == 0 {
        return Err(LpError::Empty);
    }
    let form = StandardForm::build(lp);
    solve_on_form_with_pricing(lp, &form, warm, false)
}

/// Runs the two-phase (or warm-started) revised simplex on an already-built
/// standard form whose values must mirror `lp` (the template path, which
/// rewrites coefficients in place instead of rebuilding the form per solve).
pub(crate) fn solve_on_form(
    lp: &LinearProgram,
    form: &StandardForm,
    warm: Option<&Basis>,
) -> Result<(Solution, Basis), LpError> {
    solve_on_form_with_pricing(lp, form, warm, true)
}

/// [`solve_on_form`] with an explicit pricing strategy (`partial_pricing:
/// false` forces the full sweep on every iteration; see
/// [`solve_with_basis_full_pricing`]).
fn solve_on_form_with_pricing(
    lp: &LinearProgram,
    form: &StandardForm,
    warm: Option<&Basis>,
    partial_pricing: bool,
) -> Result<(Solution, Basis), LpError> {
    let max_iterations = (50 * (form.num_rows() + form.total_cols)).max(1000);
    let costs = phase2_costs(lp, form);
    // Work spent in abandoned warm/crash attempts, folded into the eventual
    // solution's stats so series reporting counts what was actually done.
    let mut abandoned = SolveStats::default();

    if let Some(warm_basis) = warm {
        if let Some(mut simplex) = Simplex::warm(form, warm_basis) {
            simplex.partial_pricing = partial_pricing;
            // The seed is usually primal infeasible after a value swap; dual
            // pivots repair it (replacing phase 1).  Any trouble — repair
            // gives up, iteration trouble, numerics — falls back to cold.
            let repair_started = Instant::now();
            let repaired = simplex.dual_repair(&costs, true);
            simplex.stats.phase1_seconds += repair_started.elapsed().as_secs_f64();
            if matches!(repaired, Ok(true)) {
                let mut pivots = 0usize;
                let phase2_started = Instant::now();
                let outcome = simplex.optimize(&costs, form.art_start, max_iterations, &mut pivots);
                simplex.stats.phase2_seconds += phase2_started.elapsed().as_secs_f64();
                simplex.stats.phase2_iterations = pivots;
                simplex.stats.iterations =
                    simplex.stats.phase1_iterations + simplex.stats.phase2_iterations;
                match outcome {
                    Ok(Outcome::Optimal) => {
                        let (solution, basis) = simplex.into_solution(lp);
                        // The warm path skipped phase 1, so double-check the
                        // point; numerical trouble falls back to a cold solve.
                        if lp.is_feasible(&solution.values, 1e-6) {
                            return Ok((solution, basis));
                        }
                        abandoned.absorb(&solution.stats);
                    }
                    // A seeded basis can be subtly corrupted (e.g. an
                    // artificial left basic at a nonzero value after repair),
                    // making phase 2 see a relaxation; only the cold solve
                    // may declare unboundedness.  Fall through to cold.
                    Ok(Outcome::Unbounded) | Err(_) => abandoned.absorb(&simplex.stats),
                }
            } else {
                simplex.stats.iterations = simplex.stats.phase1_iterations;
                abandoned.absorb(&simplex.stats);
            }
        }
    }

    // ---- Crash start: skip phase 1 outright on TE-shaped programs. ----
    // A successful crash + dual repair yields a provably feasible basis (no
    // artificial is basic), so phase 2 from it is sound; any trouble falls
    // through to the ordinary two-phase solve below, which also owns the
    // infeasibility verdict.
    if form.total_cols > form.art_start {
        if let Some(mut simplex) = Simplex::crash(form) {
            simplex.partial_pricing = partial_pricing;
            // Gated repair: the lift usually clears every violated row, so a
            // crash point that is still widely infeasible (e.g. binding
            // sensitivity-bound rows the min-max variable cannot lift) is
            // cheaper to hand to the two-phase method than to grind on.
            let repair_started = Instant::now();
            let repaired = simplex.dual_repair(&costs, true);
            simplex.stats.phase1_seconds += repair_started.elapsed().as_secs_f64();
            if matches!(repaired, Ok(true)) {
                let mut pivots = 0usize;
                let phase2_started = Instant::now();
                let outcome = simplex.optimize(&costs, form.art_start, max_iterations, &mut pivots);
                simplex.stats.phase2_seconds += phase2_started.elapsed().as_secs_f64();
                simplex.stats.phase2_iterations = pivots;
                simplex.stats.iterations =
                    simplex.stats.phase1_iterations + simplex.stats.phase2_iterations;
                match outcome {
                    Ok(Outcome::Optimal) => {
                        let (mut solution, basis) = simplex.into_solution(lp);
                        if lp.is_feasible(&solution.values, 1e-6) {
                            solution.stats.absorb(&abandoned);
                            return Ok((solution, basis));
                        }
                        abandoned.absorb(&solution.stats);
                    }
                    // See the warm path: the two-phase solve below owns the
                    // unboundedness (and infeasibility) verdicts.
                    Ok(Outcome::Unbounded) | Err(_) => abandoned.absorb(&simplex.stats),
                }
            } else {
                simplex.stats.iterations = simplex.stats.phase1_iterations;
                abandoned.absorb(&simplex.stats);
            }
        }
    }

    let mut simplex = Simplex::cold(form);
    simplex.partial_pricing = partial_pricing;
    // ---- Phase 1: minimize the sum of the artificial variables. ----
    if form.total_cols > form.art_start {
        let mut phase1_costs = vec![0.0; form.total_cols];
        for c in form.art_start..form.total_cols {
            phase1_costs[c] = 1.0;
        }
        // Phase 1 always prices fully.  Its cost vector (the artificial sum)
        // is massively degenerate — most reduced costs tie — and a candidate
        // list built from one sweep keeps steering into near-zero-progress
        // pivots: on the desensitization LPs (`≥` rows force a real phase 1)
        // partial pricing was measured to inflate phase-1 pivots ~6×, dwarfing
        // the per-iteration sweep savings.  Phase 2 re-enables the list.
        simplex.partial_pricing = false;
        let mut pivots = 0usize;
        let phase1_started = Instant::now();
        let outcome =
            simplex.optimize(&phase1_costs, form.total_cols, max_iterations, &mut pivots)?;
        simplex.partial_pricing = partial_pricing;
        simplex.stats.phase1_iterations = pivots;
        if matches!(outcome, Outcome::Unbounded) {
            // Phase 1 is bounded below by zero; unbounded means breakdown.
            return Err(LpError::Numerical);
        }
        simplex.stats.phase1_objective = simplex.objective(&phase1_costs);
        if simplex.stats.phase1_objective > 1e-6 {
            return Err(LpError::Infeasible);
        }
        simplex.drive_out_artificials();
        simplex.stats.phase1_seconds += phase1_started.elapsed().as_secs_f64();
    }
    // ---- Phase 2: minimize the original objective. ----
    let mut pivots = 0usize;
    let phase2_started = Instant::now();
    let outcome = simplex.optimize(&costs, form.art_start, max_iterations, &mut pivots)?;
    simplex.stats.phase2_seconds += phase2_started.elapsed().as_secs_f64();
    simplex.stats.phase2_iterations = pivots;
    if matches!(outcome, Outcome::Unbounded) {
        return Err(LpError::Unbounded);
    }
    let (mut solution, basis) = simplex.into_solution(lp);
    solution.stats.absorb(&abandoned);
    Ok((solution, basis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, LinearProgram, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn matches_dense_on_the_textbook_maximization() {
        let mut lp = LinearProgram::new(Direction::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::LessEq, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 36.0);
        assert_close(sol.values[x], 2.0);
        assert_close(sol.values[y], 6.0);
        assert!(sol.stats.phase2_iterations > 0);
        assert!(!sol.stats.warm_started);
    }

    #[test]
    fn handles_equalities_geq_and_negative_rhs() {
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 3.0);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Relation::LessEq, -4.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 20.0);
        assert!(sol.stats.phase1_iterations > 0);
        assert!((sol.stats.phase1_objective).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 2.0);
        assert!(matches!(solve(&lp), Err(LpError::Infeasible)));

        let mut lp = LinearProgram::new(Direction::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 1.0);
        assert!(matches!(solve(&lp), Err(LpError::Unbounded)));

        let lp = LinearProgram::new(Direction::Minimize);
        assert!(matches!(solve(&lp), Err(LpError::Empty)));
    }

    #[test]
    fn degenerate_and_redundant_programs_terminate() {
        let mut lp = LinearProgram::new(Direction::Maximize);
        let x = lp.add_variable(10.0);
        let y = lp.add_variable(-57.0);
        let z = lp.add_variable(-9.0);
        let w = lp.add_variable(-24.0);
        lp.add_constraint(vec![(x, 0.5), (y, -5.5), (z, -2.5), (w, 9.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(x, 0.5), (y, -1.5), (z, -0.5), (w, 1.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 1.0);

        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Equal, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 2.0);
        assert_close(sol.values[x], 1.0);
    }

    #[test]
    fn min_mlu_toy_instance() {
        let mut lp = LinearProgram::new(Direction::Minimize);
        let theta = lp.add_variable(1.0);
        let f1 = lp.add_variable(0.0);
        let f2 = lp.add_variable(0.0);
        lp.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Relation::Equal, 3.0);
        lp.add_constraint(vec![(f1, 1.0), (theta, -1.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(f2, 1.0), (theta, -2.0)], Relation::LessEq, 0.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 1.0);
        assert_close(sol.values[f1], 1.0);
        assert_close(sol.values[f2], 2.0);
    }

    #[test]
    fn warm_start_reuses_the_previous_basis() {
        // Solve, perturb the RHS, re-solve warm: the result must match a cold
        // solve and the warm path must actually run.
        let mut lp = LinearProgram::new(Direction::Minimize);
        let theta = lp.add_variable(1.0);
        let f1 = lp.add_variable(0.0);
        let f2 = lp.add_variable(0.0);
        lp.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Relation::Equal, 3.0);
        lp.add_constraint(vec![(f1, 1.0), (theta, -1.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(f2, 1.0), (theta, -2.0)], Relation::LessEq, 0.0);
        let (_, basis) = solve_with_basis(&lp, None).unwrap();

        let mut perturbed = LinearProgram::new(Direction::Minimize);
        let theta = perturbed.add_variable(1.0);
        let f1 = perturbed.add_variable(0.0);
        let f2 = perturbed.add_variable(0.0);
        perturbed.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Relation::Equal, 4.5);
        perturbed.add_constraint(vec![(f1, 1.0), (theta, -1.0)], Relation::LessEq, 0.0);
        perturbed.add_constraint(vec![(f2, 1.0), (theta, -2.0)], Relation::LessEq, 0.0);
        let (warm_sol, _) = solve_with_basis(&perturbed, Some(&basis)).unwrap();
        let cold_sol = solve(&perturbed).unwrap();
        assert_close(warm_sol.objective_value, cold_sol.objective_value);
        assert_close(warm_sol.objective_value, 1.5);
        assert!(warm_sol.stats.warm_started, "warm basis must be accepted here");
        assert_eq!(warm_sol.stats.phase1_iterations, 0);
    }

    #[test]
    fn mismatched_warm_basis_falls_back_to_cold() {
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 2.0);
        let (_, basis) = solve_with_basis(&lp, None).unwrap();

        let mut other = LinearProgram::new(Direction::Minimize);
        let a = other.add_variable(1.0);
        let b = other.add_variable(1.0);
        other.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::GreaterEq, 4.0);
        let (sol, _) = solve_with_basis(&other, Some(&basis)).unwrap();
        assert_close(sol.objective_value, 4.0);
        assert!(!sol.stats.warm_started);
    }

    #[test]
    fn refactorization_keeps_long_solves_accurate() {
        // A chain program large enough to force several reinversions.
        let n = 300;
        let mut lp = LinearProgram::new(Direction::Minimize);
        let vars: Vec<usize> = (0..n).map(|i| lp.add_variable(1.0 + (i % 7) as f64)).collect();
        for i in 0..n {
            let mut coeffs = vec![(vars[i], 1.0)];
            if i + 1 < n {
                coeffs.push((vars[i + 1], 0.5));
            }
            lp.add_constraint(coeffs, Relation::GreaterEq, 1.0);
        }
        let sol = solve(&lp).unwrap();
        assert!(lp.is_feasible(&sol.values, 1e-6));
        assert!(sol.stats.refactorizations > 0, "expected at least one reinversion");
        let dense = crate::simplex::solve(&lp).unwrap();
        assert_close(sol.objective_value, dense.objective_value);
    }
}
