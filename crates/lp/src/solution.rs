//! Solver results and errors.

use std::fmt;

/// Diagnostic counters reported by the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Number of simplex pivots performed (0 if not tracked).
    pub iterations: usize,
    /// Optimal value of the phase-1 objective (sum of artificials).
    pub phase1_objective: f64,
}

/// An optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal values of the structural variables, in declaration order.
    pub values: Vec<f64>,
    /// Objective value at the optimum (in the original direction of the
    /// program, i.e. not negated for maximization problems).
    pub objective_value: f64,
    /// Diagnostic counters.
    pub stats: SolveStats,
}

/// Errors returned by the simplex solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The program has no variables.
    Empty,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The pivot limit was exhausted before reaching optimality.
    IterationLimit,
    /// A numerical breakdown occurred (ill-conditioned pivot).
    Numerical,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Empty => write!(f, "the linear program has no variables"),
            LpError::Infeasible => write!(f, "the linear program is infeasible"),
            LpError::Unbounded => write!(f, "the objective is unbounded"),
            LpError::IterationLimit => write!(f, "the simplex iteration limit was exhausted"),
            LpError::Numerical => write!(f, "numerical breakdown during pivoting"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::Empty.to_string().contains("no variables"));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
        assert!(LpError::Numerical.to_string().contains("breakdown"));
    }

    #[test]
    fn stats_default_is_zero() {
        let s = SolveStats::default();
        assert_eq!(s.iterations, 0);
        assert_eq!(s.phase1_objective, 0.0);
    }
}
