//! Solver results and errors.

use std::fmt;

/// Diagnostic counters reported by the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Total number of simplex pivots performed (phase 1 + phase 2).
    pub iterations: usize,
    /// Pivots spent in phase 1 (driving artificials to zero); 0 when the
    /// solve needed no phase 1 or was warm started.
    pub phase1_iterations: usize,
    /// Pivots spent in phase 2 (optimizing the original objective).
    pub phase2_iterations: usize,
    /// Basis reinversions performed by the revised simplex (always 0 for the
    /// dense tableau solver, which carries no factorization).
    pub refactorizations: usize,
    /// Whether the solve was seeded from a previous basis and the seed was
    /// accepted (see [`crate::revised::solve_with_basis`]).
    pub warm_started: bool,
    /// Optimal value of the phase-1 objective (sum of artificials).
    pub phase1_objective: f64,
    /// Wall-clock seconds spent in phase-1 work (artificial elimination and
    /// warm-start dual repair).  A measured quantity: excluded from every
    /// determinism comparison, reported only through telemetry.
    pub phase1_seconds: f64,
    /// Wall-clock seconds spent optimizing the original objective
    /// (phase 2).  Measured, never digested.
    pub phase2_seconds: f64,
    /// Wall-clock seconds spent rebuilding the basis factorization
    /// (a sub-span of the phase timings above, not additional to them).
    pub factor_seconds: f64,
}

impl SolveStats {
    /// Accumulates the counters of another solve (series reporting).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.iterations += other.iterations;
        self.phase1_iterations += other.phase1_iterations;
        self.phase2_iterations += other.phase2_iterations;
        self.refactorizations += other.refactorizations;
        self.phase1_objective += other.phase1_objective;
        self.phase1_seconds += other.phase1_seconds;
        self.phase2_seconds += other.phase2_seconds;
        self.factor_seconds += other.factor_seconds;
    }
}

/// An optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal values of the structural variables, in declaration order.
    pub values: Vec<f64>,
    /// Objective value at the optimum (in the original direction of the
    /// program, i.e. not negated for maximization problems).
    pub objective_value: f64,
    /// Diagnostic counters.
    pub stats: SolveStats,
}

/// Errors returned by the simplex solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The program has no variables.
    Empty,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The pivot limit was exhausted before reaching optimality.
    IterationLimit,
    /// A numerical breakdown occurred (ill-conditioned pivot).
    Numerical,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Empty => write!(f, "the linear program has no variables"),
            LpError::Infeasible => write!(f, "the linear program is infeasible"),
            LpError::Unbounded => write!(f, "the objective is unbounded"),
            LpError::IterationLimit => write!(f, "the simplex iteration limit was exhausted"),
            LpError::Numerical => write!(f, "numerical breakdown during pivoting"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::Empty.to_string().contains("no variables"));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
        assert!(LpError::Numerical.to_string().contains("breakdown"));
    }

    #[test]
    fn stats_default_is_zero() {
        let s = SolveStats::default();
        assert_eq!(s.iterations, 0);
        assert_eq!(s.phase1_iterations, 0);
        assert_eq!(s.phase2_iterations, 0);
        assert_eq!(s.refactorizations, 0);
        assert!(!s.warm_started);
        assert_eq!(s.phase1_objective, 0.0);
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let mut a = SolveStats {
            iterations: 3,
            phase1_iterations: 1,
            phase2_iterations: 2,
            refactorizations: 1,
            phase1_seconds: 0.5,
            ..Default::default()
        };
        let b = SolveStats {
            iterations: 5,
            phase2_iterations: 5,
            refactorizations: 2,
            warm_started: true,
            phase1_seconds: 0.25,
            phase2_seconds: 1.0,
            factor_seconds: 0.125,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.iterations, 8);
        assert_eq!(a.phase1_iterations, 1);
        assert_eq!(a.phase2_iterations, 7);
        assert_eq!(a.refactorizations, 3);
        assert!((a.phase1_seconds - 0.75).abs() < 1e-12);
        assert!((a.phase2_seconds - 1.0).abs() < 1e-12);
        assert!((a.factor_seconds - 0.125).abs() < 1e-12);
    }
}
