//! Compressed sparse row storage for constraint matrices.
//!
//! The revised simplex ([`crate::revised`]) needs the constraint matrix both
//! row-wise (assembly mirrors the row-oriented [`crate::problem`] API) and
//! column-wise (pricing and FTRAN operate on entering columns).  [`CsrMatrix`]
//! stores the values once in CSR order and derives a [`ColumnView`] whose
//! entries index back into the CSR value array, so updating a coefficient in
//! place (the warm-start template path re-writes demand-dependent values every
//! snapshot) keeps both views consistent for free.

/// A sparse matrix in compressed sparse row format.
///
/// The sparsity pattern is fixed at construction; values may be rewritten in
/// place via [`CsrMatrix::set_value`].  Explicitly stored zeros are allowed —
/// the simplex treats them like any other coefficient — which is what lets a
/// warm-start template keep one pattern across snapshots whose demands differ
/// in support.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    num_rows: usize,
    num_cols: usize,
    /// `row_ptr[r]..row_ptr[r + 1]` delimits row `r` in `col_idx` / `values`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row sparse entries `(column, value)`.
    /// Entries within a row need not be sorted; duplicate columns within a row
    /// are summed.
    pub fn from_rows(num_cols: usize, rows: &[Vec<(usize, f64)>]) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut sorted: Vec<(usize, f64)> = Vec::new();
        for row in rows {
            sorted.clear();
            sorted.extend_from_slice(row);
            sorted.sort_by_key(|(c, _)| *c);
            let mut i = 0;
            while i < sorted.len() {
                let (c, mut v) = sorted[i];
                assert!(c < num_cols, "column {c} out of bounds ({num_cols} columns)");
                let mut j = i + 1;
                while j < sorted.len() && sorted[j].0 == c {
                    v += sorted[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { num_rows: rows.len(), num_cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The entries of row `r` as parallel `(columns, values)` slices.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Raw value storage (CSR order); positions returned by
    /// [`CsrMatrix::position`] index into this slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Rewrites the stored value at CSR position `pos` (pattern unchanged).
    pub fn set_value(&mut self, pos: usize, value: f64) {
        assert!(value.is_finite(), "matrix values must be finite");
        self.values[pos] = value;
    }

    /// The CSR position of entry `(r, c)`, if stored.
    pub fn position(&self, r: usize, c: usize) -> Option<usize> {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].binary_search(&c).ok().map(|i| lo + i)
    }

    /// Builds the column-wise view of the current pattern.
    pub fn column_view(&self) -> ColumnView {
        let mut counts = vec![0usize; self.num_cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for c in 0..self.num_cols {
            counts[c + 1] += counts[c];
        }
        let col_ptr = counts.clone();
        let mut fill = counts;
        let mut row_idx = vec![0usize; self.col_idx.len()];
        let mut csr_pos = vec![0usize; self.col_idx.len()];
        for r in 0..self.num_rows {
            for pos in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[pos];
                let slot = fill[c];
                row_idx[slot] = r;
                csr_pos[slot] = pos;
                fill[c] += 1;
            }
        }
        ColumnView { col_ptr, row_idx, csr_pos }
    }
}

/// Column-major index into a [`CsrMatrix`].
///
/// Valid for as long as the owning matrix keeps its pattern; values are read
/// through the matrix at iteration time, so in-place value updates are
/// reflected without rebuilding the view.
#[derive(Debug, Clone)]
pub struct ColumnView {
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    csr_pos: Vec<usize>,
}

impl ColumnView {
    /// Number of stored entries in column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Iterates the `(row, value)` entries of column `c` of `matrix`.
    pub fn column<'a>(
        &'a self,
        matrix: &'a CsrMatrix,
        c: usize,
    ) -> impl Iterator<Item = (usize, f64)> + 'a {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        (lo..hi).map(move |i| (self.row_idx[i], matrix.values[self.csr_pos[i]]))
    }

    /// The dot product of column `c` with a dense vector.
    pub fn column_dot(&self, matrix: &CsrMatrix, c: usize, dense: &[f64]) -> f64 {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        let mut acc = 0.0;
        for i in lo..hi {
            acc += dense[self.row_idx[i]] * matrix.values[self.csr_pos[i]];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        CsrMatrix::from_rows(
            3,
            &[vec![(2, 2.0), (0, 1.0)], vec![(1, 3.0)], vec![(0, 4.0), (2, 5.0)]],
        )
    }

    #[test]
    fn rows_are_sorted_and_deduplicated() {
        let m = CsrMatrix::from_rows(3, &[vec![(2, 1.0), (0, 2.0), (2, 3.0)]]);
        assert_eq!(m.nnz(), 2);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[2.0, 4.0]);
    }

    #[test]
    fn column_view_transposes_correctly() {
        let m = sample();
        let view = m.column_view();
        assert_eq!(view.col_nnz(0), 2);
        assert_eq!(view.col_nnz(1), 1);
        let col0: Vec<(usize, f64)> = view.column(&m, 0).collect();
        assert_eq!(col0, vec![(0, 1.0), (2, 4.0)]);
        let col2: Vec<(usize, f64)> = view.column(&m, 2).collect();
        assert_eq!(col2, vec![(0, 2.0), (2, 5.0)]);
    }

    #[test]
    fn in_place_updates_are_visible_through_the_view() {
        let mut m = sample();
        let view = m.column_view();
        let pos = m.position(2, 0).unwrap();
        m.set_value(pos, -7.0);
        let col0: Vec<(usize, f64)> = view.column(&m, 0).collect();
        assert_eq!(col0, vec![(0, 1.0), (2, -7.0)]);
        assert_eq!(m.position(1, 0), None);
    }

    #[test]
    fn column_dot_matches_manual_product() {
        let m = sample();
        let view = m.column_view();
        let y = [1.0, 2.0, 3.0];
        assert!((view.column_dot(&m, 0, &y) - 13.0).abs() < 1e-12);
        assert!((view.column_dot(&m, 1, &y) - 6.0).abs() < 1e-12);
        assert!((view.column_dot(&m, 2, &y) - 17.0).abs() < 1e-12);
    }
}
