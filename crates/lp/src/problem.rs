//! Linear-program modelling API.
//!
//! The paper solves all of its LP-based baselines (omniscient TE, prediction
//! TE, desensitization TE, oblivious/COPE subproblems) with Gurobi.  This crate
//! provides a small, self-contained replacement: problems are expressed as
//! `min/max cᵀx` subject to sparse linear rows `aᵀx {≤,=,≥} b` with all
//! variables non-negative, and solved with a sparse revised simplex
//! ([`crate::revised`]; the dense two-phase tableau of [`crate::simplex`]
//! remains as the reference implementation).
//!
//! All TE formulations used in this repository only need non-negative
//! variables, so variable bounds other than `x ≥ 0` are expressed as rows.

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `aᵀx ≤ b`
    LessEq,
    /// `aᵀx = b`
    Equal,
    /// `aᵀx ≥ b`
    GreaterEq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A sparse linear constraint `Σ coeffs[i].1 · x[coeffs[i].0] {rel} rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients as `(variable index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation of the constraint.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    direction: Direction,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program with the given optimization direction.
    pub fn new(direction: Direction) -> Self {
        LinearProgram { num_vars: 0, objective: Vec::new(), direction, constraints: Vec::new() }
    }

    /// Adds a variable with the given objective coefficient and returns its index.
    /// All variables are constrained to be non-negative.
    pub fn add_variable(&mut self, objective_coefficient: f64) -> usize {
        assert!(objective_coefficient.is_finite(), "objective coefficient must be finite");
        self.objective.push(objective_coefficient);
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Adds `count` variables sharing the same objective coefficient; returns
    /// the index of the first one (the rest follow contiguously).
    pub fn add_variables(&mut self, count: usize, objective_coefficient: f64) -> usize {
        let first = self.num_vars;
        for _ in 0..count {
            self.add_variable(objective_coefficient);
        }
        first
    }

    /// Adds a constraint.  Coefficients referencing unknown variables or
    /// non-finite values are rejected with a panic (these are programming
    /// errors in the formulation, not runtime conditions).
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint RHS must be finite");
        for (v, c) in &coeffs {
            assert!(*v < self.num_vars, "constraint references unknown variable {v}");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint { coeffs, relation, rhs });
    }

    /// Rewrites the value of one stored coefficient entry (template path; the
    /// sparsity pattern of the constraint is unchanged).
    pub(crate) fn set_constraint_coefficient(&mut self, row: usize, entry: usize, value: f64) {
        assert!(value.is_finite(), "constraint coefficient must be finite");
        self.constraints[row].coeffs[entry].1 = value;
    }

    /// Rewrites the right-hand side of a constraint (template path).
    pub(crate) fn set_constraint_rhs(&mut self, row: usize, value: f64) {
        assert!(value.is_finite(), "constraint RHS must be finite");
        self.constraints[row].rhs = value;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Optimization direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars, "point has wrong dimension");
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks whether `x ≥ 0` satisfies every constraint within `tolerance`.
    pub fn is_feasible(&self, x: &[f64], tolerance: f64) -> bool {
        if x.len() != self.num_vars || x.iter().any(|v| !v.is_finite() || *v < -tolerance) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|(i, a)| a * x[*i]).sum();
            match c.relation {
                Relation::LessEq => lhs <= c.rhs + tolerance,
                Relation::Equal => (lhs - c.rhs).abs() <= tolerance,
                Relation::GreaterEq => lhs >= c.rhs - tolerance,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shape() {
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variables(2, 0.5);
        assert_eq!(x, 0);
        assert_eq!(y, 1);
        assert_eq!(lp.num_vars(), 3);
        lp.add_constraint(vec![(0, 1.0), (2, 2.0)], Relation::LessEq, 4.0);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective(), &[1.0, 0.5, 0.5]);
        assert_eq!(lp.direction(), Direction::Minimize);
        assert_eq!(lp.objective_value(&[2.0, 0.0, 1.0]), 2.5);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new(Direction::Maximize);
        lp.add_variables(2, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::LessEq, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::GreaterEq, 0.2);
        lp.add_constraint(vec![(1, 2.0)], Relation::Equal, 0.6);
        assert!(lp.is_feasible(&[0.5, 0.3], 1e-9));
        assert!(!lp.is_feasible(&[0.1, 0.3], 1e-9)); // violates >=
        assert!(!lp.is_feasible(&[0.5, 0.4], 1e-9)); // violates ==
        assert!(!lp.is_feasible(&[0.9, 0.3], 1e-9)); // violates <=
        assert!(!lp.is_feasible(&[-0.1, 0.3], 1e-9)); // negative
        assert!(!lp.is_feasible(&[0.5], 1e-9)); // wrong dimension
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_unknown_variable() {
        let mut lp = LinearProgram::new(Direction::Minimize);
        lp.add_variable(1.0);
        lp.add_constraint(vec![(3, 1.0)], Relation::LessEq, 1.0);
    }
}
