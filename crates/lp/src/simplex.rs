//! Dense two-phase simplex solver.
//!
//! The implementation is a textbook tableau simplex:
//!
//! 1. rows are normalized so every right-hand side is non-negative, then slack,
//!    surplus and artificial columns are appended to obtain an identity basis;
//! 2. phase 1 minimizes the sum of the artificial variables — a positive
//!    optimum means the program is infeasible;
//! 3. phase 2 minimizes the original objective (maximization is handled by
//!    negating the costs), with artificial columns excluded from entering.
//!
//! Pivoting uses Dantzig's rule with an automatic switch to Bland's rule after
//! a stall, which guarantees termination.  Since the sparse revised simplex
//! ([`crate::revised`]) became the default engine this dense tableau is kept
//! as the independent reference implementation: the property tests in
//! `lib.rs` assert the two agree on randomized programs.

use crate::problem::{Direction, LinearProgram, Relation};
use crate::solution::{LpError, Solution, SolveStats};

/// Numeric tolerance used for optimality and feasibility tests.
const EPS: f64 = 1e-9;
/// Number of non-improving iterations after which we switch to Bland's rule.
const STALL_LIMIT: usize = 200;

struct Tableau {
    /// (m + 1) rows; the last row is the objective (reduced-cost) row.
    rows: Vec<Vec<f64>>,
    /// Total number of structural + slack + artificial columns (RHS excluded).
    cols: usize,
    /// Basic variable (column index) of each constraint row.
    basis: Vec<usize>,
    /// First artificial column index (artificials occupy `art_start..cols`).
    art_start: usize,
    /// Number of original (structural) variables.
    num_vars: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.rows[row][self.cols]
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_value = self.rows[pivot_row][pivot_col];
        debug_assert!(pivot_value.abs() > EPS, "pivot element too small");
        let inv = 1.0 / pivot_value;
        for v in self.rows[pivot_row].iter_mut() {
            *v *= inv;
        }
        let pivot_row_copy = self.rows[pivot_row].clone();
        for (r, row) in self.rows.iter_mut().enumerate() {
            if r == pivot_row {
                continue;
            }
            let factor = row[pivot_col];
            if factor.abs() <= EPS {
                row[pivot_col] = 0.0;
                continue;
            }
            for (c, v) in row.iter_mut().enumerate() {
                *v -= factor * pivot_row_copy[c];
            }
            row[pivot_col] = 0.0;
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Runs the simplex on the current objective row until optimality.
    /// `allow_artificial` controls whether artificial columns may enter.
    /// Returns `Ok(true)` on optimality, `Ok(false)` on unboundedness.
    /// Pivots are counted into `pivots`.
    fn optimize(
        &mut self,
        allow_artificial: bool,
        max_iterations: usize,
        pivots: &mut usize,
    ) -> Result<bool, LpError> {
        let m = self.basis.len();
        let obj = m; // index of the objective row
        let mut stall = 0usize;
        let mut last_objective = self.rows[obj][self.cols];
        for _ in 0..max_iterations {
            let use_bland = stall >= STALL_LIMIT;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative one (Bland).
            let limit = if allow_artificial { self.cols } else { self.art_start };
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for c in 0..limit {
                let rc = self.rows[obj][c];
                if rc < -EPS {
                    if use_bland {
                        entering = Some(c);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        entering = Some(c);
                    }
                }
            }
            let entering = match entering {
                Some(c) => c,
                None => return Ok(true), // optimal
            };
            // Ratio test.  A strictly smaller ratio always wins; degenerate
            // ties deterministically pick the row whose basic variable has the
            // lowest column index, in Dantzig and Bland mode alike (the
            // Bland-mode half of the anti-cycling guarantee).
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                let a = self.rows[r][entering];
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let take = match leaving {
                        None => true,
                        Some(l) => {
                            ratio < best_ratio - EPS
                                || ((ratio - best_ratio).abs() <= EPS
                                    && self.basis[r] < self.basis[l])
                        }
                    };
                    if take {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let leaving = match leaving {
                Some(r) => r,
                None => return Ok(false), // unbounded
            };
            self.pivot(leaving, entering);
            *pivots += 1;
            let objective = self.rows[obj][self.cols];
            if (objective - last_objective).abs() <= EPS {
                stall += 1;
            } else {
                stall = 0;
                last_objective = objective;
            }
        }
        Err(LpError::IterationLimit)
    }
}

/// Solves a linear program with the two-phase simplex method.
pub fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let n = lp.num_vars();
    let m = lp.num_constraints();
    if n == 0 {
        return Err(LpError::Empty);
    }

    // Count slack and artificial columns.
    let mut num_slack = 0usize;
    let mut num_artificial = 0usize;
    // Normalized rows: (dense coefficients, relation, rhs >= 0).
    let mut norm: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
    for c in lp.constraints() {
        let mut dense = vec![0.0; n];
        for (i, v) in &c.coeffs {
            dense[*i] += v;
        }
        let (dense, relation, rhs) = if c.rhs < 0.0 {
            let flipped = match c.relation {
                Relation::LessEq => Relation::GreaterEq,
                Relation::GreaterEq => Relation::LessEq,
                Relation::Equal => Relation::Equal,
            };
            (dense.iter().map(|v| -v).collect(), flipped, -c.rhs)
        } else {
            (dense, c.relation, c.rhs)
        };
        match relation {
            Relation::LessEq => num_slack += 1,
            Relation::GreaterEq => {
                num_slack += 1;
                num_artificial += 1;
            }
            Relation::Equal => num_artificial += 1,
        }
        norm.push((dense, relation, rhs));
    }

    let slack_start = n;
    let art_start = n + num_slack;
    let cols = n + num_slack + num_artificial;

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut basis = vec![0usize; m];
    let mut next_slack = slack_start;
    let mut next_art = art_start;
    for (r, (dense, relation, rhs)) in norm.iter().enumerate() {
        let mut row = vec![0.0; cols + 1];
        row[..n].copy_from_slice(dense);
        row[cols] = *rhs;
        match relation {
            Relation::LessEq => {
                row[next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            Relation::GreaterEq => {
                row[next_slack] = -1.0;
                next_slack += 1;
                row[next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            Relation::Equal => {
                row[next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
        }
        rows.push(row);
    }
    // Objective row placeholder.
    rows.push(vec![0.0; cols + 1]);

    let mut tableau = Tableau { rows, cols, basis, art_start, num_vars: n };
    let max_iterations = (50 * (m + cols)).max(1000);
    let mut stats = SolveStats::default();

    // ---- Phase 1 ----
    if num_artificial > 0 {
        // Objective: minimize the sum of artificials.
        {
            let obj = tableau.basis.len();
            for c in 0..=tableau.cols {
                tableau.rows[obj][c] = 0.0;
            }
            for c in art_start..cols {
                tableau.rows[obj][c] = 1.0;
            }
            // Canonicalize: subtract rows whose basic variable is artificial.
            for r in 0..m {
                if tableau.basis[r] >= art_start {
                    let row = tableau.rows[r].clone();
                    for c in 0..=tableau.cols {
                        tableau.rows[obj][c] -= row[c];
                    }
                }
            }
        }
        let mut pivots = 0usize;
        let finished = tableau.optimize(true, max_iterations, &mut pivots)?;
        stats.phase1_iterations = pivots;
        if !finished {
            // Phase 1 is always bounded below by zero; unbounded here means a
            // numerical problem.
            return Err(LpError::Numerical);
        }
        stats.phase1_objective = -tableau.rows[m][tableau.cols];
        if stats.phase1_objective > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive artificials out of the basis where possible.
        for r in 0..m {
            if tableau.basis[r] >= art_start {
                let col = (0..art_start).find(|&c| tableau.rows[r][c].abs() > EPS);
                if let Some(c) = col {
                    tableau.pivot(r, c);
                }
            }
        }
    }

    // ---- Phase 2 ----
    {
        let obj = tableau.basis.len();
        let sign = match lp.direction() {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        for c in 0..=tableau.cols {
            tableau.rows[obj][c] = 0.0;
        }
        for (c, coeff) in lp.objective().iter().enumerate() {
            tableau.rows[obj][c] = sign * coeff;
        }
        // Canonicalize with respect to the current basis.
        for r in 0..m {
            let b = tableau.basis[r];
            let factor = tableau.rows[obj][b];
            if factor.abs() > EPS {
                let row = tableau.rows[r].clone();
                for c in 0..=tableau.cols {
                    tableau.rows[obj][c] -= factor * row[c];
                }
            }
        }
    }
    let mut pivots = 0usize;
    let finished = tableau.optimize(false, max_iterations, &mut pivots)?;
    stats.phase2_iterations = pivots;
    if !finished {
        return Err(LpError::Unbounded);
    }

    // Extract the solution.
    let mut values = vec![0.0; n];
    for r in 0..m {
        let b = tableau.basis[r];
        if b < n {
            values[b] = tableau.rhs(r).max(0.0);
        }
    }
    let objective_value = lp.objective_value(&values);
    stats.iterations = stats.phase1_iterations + stats.phase2_iterations;
    Ok(Solution { values, objective_value, stats })
}

#[allow(dead_code)]
fn debug_dump(t: &Tableau) -> String {
    let mut s = String::new();
    for row in &t.rows {
        for v in row {
            s.push_str(&format!("{v:8.3} "));
        }
        s.push('\n');
    }
    s.push_str(&format!("basis: {:?}, vars: {}\n", t.basis, t.num_vars));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, LinearProgram, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximization_with_slack_only() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
        let mut lp = LinearProgram::new(Direction::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::LessEq, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 36.0);
        assert_close(sol.values[x], 2.0);
        assert_close(sol.values[y], 6.0);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn minimization_with_equalities_and_geq() {
        // min 2x + 3y s.t. x + y = 10, x >= 3  => x=10, y=0? No: obj favours x.
        // 2x+3y with x+y=10: best is all x => x=10,y=0, obj=20 (x>=3 satisfied).
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 3.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 20.0);
        assert_close(sol.values[x], 10.0);
        assert_close(sol.values[y], 0.0);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2 cannot both hold.
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 2.0);
        assert!(matches!(solve(&lp), Err(LpError::Infeasible)));
    }

    #[test]
    fn detects_unbounded() {
        // max x with only x >= 1.
        let mut lp = LinearProgram::new(Direction::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 1.0);
        assert!(matches!(solve(&lp), Err(LpError::Unbounded)));
    }

    #[test]
    fn handles_negative_rhs() {
        // min x + y s.t. -x - y <= -4 (i.e. x + y >= 4) => obj 4.
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Relation::LessEq, -4.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 4.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; ensures stalling does not loop forever.
        let mut lp = LinearProgram::new(Direction::Maximize);
        let x = lp.add_variable(10.0);
        let y = lp.add_variable(-57.0);
        let z = lp.add_variable(-9.0);
        let w = lp.add_variable(-24.0);
        lp.add_constraint(vec![(x, 0.5), (y, -5.5), (z, -2.5), (w, 9.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(x, 0.5), (y, -1.5), (z, -0.5), (w, 1.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 1.0);
    }

    #[test]
    fn min_mlu_toy_instance() {
        // Two parallel links (capacities 1 and 2) carrying demand 3 between the
        // same endpoints: minimize the MLU theta with
        //   f1 + f2 = 3, f1 <= theta * 1, f2 <= theta * 2  => theta = 1.
        let mut lp = LinearProgram::new(Direction::Minimize);
        let theta = lp.add_variable(1.0);
        let f1 = lp.add_variable(0.0);
        let f2 = lp.add_variable(0.0);
        lp.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Relation::Equal, 3.0);
        lp.add_constraint(vec![(f1, 1.0), (theta, -1.0)], Relation::LessEq, 0.0);
        lp.add_constraint(vec![(f2, 1.0), (theta, -2.0)], Relation::LessEq, 0.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 1.0);
        assert_close(sol.values[f1], 1.0);
        assert_close(sol.values[f2], 2.0);
    }

    #[test]
    fn empty_program_is_an_error() {
        let lp = LinearProgram::new(Direction::Minimize);
        assert!(matches!(solve(&lp), Err(LpError::Empty)));
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 2 stated twice plus x = 1.
        let mut lp = LinearProgram::new(Direction::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Equal, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective_value, 2.0);
        assert_close(sol.values[x], 1.0);
        assert_close(sol.values[y], 1.0);
    }
}
